//! Frozen pre-arena reference implementations of the ESPRESSO kernels.
//!
//! This module is a verbatim snapshot of the `Vec<Cube>`-based kernels as
//! they existed before the flat [`CubeMatrix`](crate::matrix::CubeMatrix)
//! arena rewrite. It exists for two reasons:
//!
//! 1. **Differential testing** — the arena kernels are required to be
//!    result-identical to these functions on every input (see
//!    `tests/differential.rs` and the suite-wide checks in `nova-bench`).
//! 2. **Benchmarking** — the `espresso_kernels` bench times legacy vs arena
//!    side by side and counts heap allocations for both, so the speedup and
//!    allocation reduction are tracked artifacts rather than claims.
//!
//! Do not "fix" or optimize this module: its value is that it does not
//! change. New work goes into the arena path.

use crate::cover::{Cover, CoverCost};
use crate::cube::{supercube, Cube};
use crate::minimize::{MinimizeOptions, MinimizeStats};
use crate::space::CubeSpace;

/// Pre-arena single-cube containment minimization (the routine that was
/// duplicated between `Cover::absorb` and `tautology::absorb_in_place`).
pub fn absorb_in_place(space: &CubeSpace, cubes: &mut Vec<Cube>) {
    cubes.retain(|c| !c.is_empty(space));
    let n = cubes.len();
    let mut keep = vec![true; n];
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !keep[j] {
                continue;
            }
            if cubes[i].is_subset_of(&cubes[j]) && (cubes[i] != cubes[j] || i > j) {
                keep[i] = false;
                break;
            }
        }
    }
    let mut idx = 0;
    cubes.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

/// Pre-arena tautology check (unate recursive paradigm over `Vec<Cube>`).
pub fn tautology(f: &Cover) -> bool {
    taut_rec(f.space(), f.cubes().to_vec())
}

fn taut_rec(space: &CubeSpace, mut cubes: Vec<Cube>) -> bool {
    loop {
        cubes.retain(|c| !c.is_empty(space));
        if cubes.iter().any(|c| c.is_full(space)) {
            return true;
        }
        if cubes.is_empty() {
            return false;
        }
        let sup = supercube(space, &cubes);
        if !sup.is_full(space) {
            return false;
        }

        let mut reduced = false;
        for v in space.vars() {
            let mut non_full_union = Cube::zero(space);
            let mut any_non_full = false;
            for c in &cubes {
                if !c.var_is_full(space, v) {
                    any_non_full = true;
                    non_full_union = non_full_union.or(c);
                }
            }
            if !any_non_full {
                continue;
            }
            if !non_full_union.var_is_full(space, v) {
                cubes.retain(|c| c.var_is_full(space, v));
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        absorb_in_place(space, &mut cubes);
        if cubes.len() == 1 {
            return cubes[0].is_full(space);
        }

        let mut best: Option<(usize, usize, u32)> = None;
        for v in space.vars() {
            let count = cubes.iter().filter(|c| !c.var_is_full(space, v)).count();
            if count == 0 {
                continue;
            }
            let parts = space.parts(v);
            let cand = (v, count, parts);
            best = Some(match best {
                None => cand,
                Some(b) => {
                    if count > b.1 || (count == b.1 && parts < b.2) {
                        cand
                    } else {
                        b
                    }
                }
            });
        }
        let (v, _, _) = match best {
            Some(b) => b,
            None => return true,
        };

        for p in 0..space.parts(v) {
            let mut branch: Vec<Cube> = Vec::with_capacity(cubes.len());
            for c in &cubes {
                if c.has_part(space, v, p) {
                    let mut cf = c.clone();
                    cf.set_var_full(space, v);
                    branch.push(cf);
                }
            }
            if !taut_rec(space, branch) {
                return false;
            }
        }
        return true;
    }
}

/// Pre-arena exact cube-in-cover containment.
pub fn cube_in_cover(f: &Cover, c: &Cube) -> bool {
    if c.is_empty(f.space()) {
        return true;
    }
    let cf = f.cofactor(c);
    taut_rec(f.space(), cf.into_iter().collect())
}

/// Pre-arena exact cover containment.
pub fn cover_in_cover(g: &Cover, f: &Cover) -> bool {
    g.iter().all(|c| cube_in_cover(f, c))
}

fn verify_minimized(m: &Cover, f: &Cover, d: &Cover) -> bool {
    let fd = f.union(d);
    let md = m.union(d);
    cover_in_cover(f, &md) && cover_in_cover(m, &fd)
}

fn complement_cube(space: &CubeSpace, c: &Cube) -> Vec<Cube> {
    if c.is_empty(space) {
        return vec![Cube::full(space)];
    }
    let mut out = Vec::new();
    for v in space.vars() {
        if c.var_is_full(space, v) {
            continue;
        }
        let mut r = Cube::full(space);
        for p in 0..space.parts(v) {
            if c.has_part(space, v, p) {
                r.clear_part(space, v, p);
            }
        }
        out.push(r);
    }
    out
}

/// Pre-arena cover complementation.
pub fn complement(f: &Cover) -> Cover {
    let cubes = comp_rec(f.space(), f.cubes().to_vec());
    let mut out = Cover::from_cubes(f.space().clone(), cubes);
    absorb_in_place(&out.space().clone(), out.cubes_mut());
    out
}

fn comp_rec(space: &CubeSpace, mut cubes: Vec<Cube>) -> Vec<Cube> {
    cubes.retain(|c| !c.is_empty(space));
    if cubes.iter().any(|c| c.is_full(space)) {
        return Vec::new();
    }
    if cubes.is_empty() {
        return vec![Cube::full(space)];
    }
    if cubes.len() == 1 {
        return complement_cube(space, &cubes[0]);
    }

    let mut keep = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..cubes.len() {
            if i != j
                && keep[j]
                && cubes[i].is_subset_of(&cubes[j])
                && (cubes[i] != cubes[j] || i > j)
            {
                keep[i] = false;
                break;
            }
        }
    }
    let mut idx = 0;
    cubes.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    if cubes.len() == 1 {
        return complement_cube(space, &cubes[0]);
    }

    let mut best: Option<(usize, usize, u32)> = None;
    for v in space.vars() {
        let count = cubes.iter().filter(|c| !c.var_is_full(space, v)).count();
        if count == 0 {
            continue;
        }
        let parts = space.parts(v);
        let cand = (v, count, parts);
        best = Some(match best {
            None => cand,
            Some(b) => {
                if count > b.1 || (count == b.1 && parts < b.2) {
                    cand
                } else {
                    b
                }
            }
        });
    }
    let v = best
        .expect("non-universe multi-cube cover has an active variable")
        .0;

    let mut out: Vec<Cube> = Vec::new();
    for p in 0..space.parts(v) {
        let mut branch: Vec<Cube> = Vec::new();
        for c in &cubes {
            if c.has_part(space, v, p) {
                let mut cf = c.clone();
                cf.set_var_full(space, v);
                branch.push(cf);
            }
        }
        let comp = comp_rec(space, branch);
        for mut c in comp {
            c.clear_var(space, v);
            c.set_part(space, v, p);
            out.push(c);
        }
    }

    merge_on_var(space, v, &mut out);
    out
}

fn merge_on_var(space: &CubeSpace, v: usize, cubes: &mut Vec<Cube>) {
    let mut i = 0;
    while i < cubes.len() {
        let mut j = i + 1;
        while j < cubes.len() {
            if equal_outside_var(space, v, &cubes[i], &cubes[j]) {
                let merged = cubes[i].or(&cubes[j]);
                cubes[i] = merged;
                cubes.swap_remove(j);
            } else {
                j += 1;
            }
        }
        i += 1;
    }
}

fn equal_outside_var(space: &CubeSpace, v: usize, a: &Cube, b: &Cube) -> bool {
    let mask = space.mask(v);
    a.words()
        .iter()
        .zip(b.words())
        .zip(mask)
        .all(|((x, y), m)| x & !m == y & !m)
}

/// Pre-arena EXPAND.
pub fn expand(f: &mut Cover, d: &Cover) {
    let space = f.space().clone();
    absorb_in_place(&space, f.cubes_mut());
    let n = f.len();
    if n == 0 {
        return;
    }

    let total_bits = space.total_bits() as usize;
    let mut col = vec![0u32; total_bits];
    for c in f.iter() {
        for v in space.vars() {
            for p in 0..space.parts(v) {
                if c.has_part(&space, v, p) {
                    col[space.bit(v, p) as usize] += 1;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| f.cubes()[i].count_ones());

    let mut covered = vec![false; n];
    for &i in &order {
        if covered[i] {
            continue;
        }
        let mut c = f.cubes()[i].clone();
        let oracle = {
            let mut cubes = Vec::with_capacity(f.len() + d.len());
            for (j, cube) in f.iter().enumerate() {
                if !covered[j] {
                    cubes.push(cube.clone());
                }
            }
            cubes.extend(d.iter().cloned());
            Cover::from_cubes(space.clone(), cubes)
        };

        let mut cands: Vec<(usize, u32)> = Vec::new();
        for v in space.vars() {
            for p in 0..space.parts(v) {
                if !c.has_part(&space, v, p) {
                    cands.push((v, p));
                }
            }
        }
        cands.sort_by_key(|&(v, p)| std::cmp::Reverse(col[space.bit(v, p) as usize]));

        for (v, p) in cands {
            let mut t = c.clone();
            t.set_part(&space, v, p);
            let ok = f
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && !covered[j] && t.is_subset_of(other))
                || d.single_cube_contains(&t)
                || cube_in_cover(&oracle, &t);
            if ok {
                c = t;
            }
        }

        f.cubes_mut()[i] = c.clone();
        for (j, cov) in covered.iter_mut().enumerate() {
            if j != i && !*cov && f.cubes()[j].is_subset_of(&c) {
                *cov = true;
            }
        }
    }

    let mut idx = 0;
    f.cubes_mut().retain(|_| {
        let k = !covered[idx];
        idx += 1;
        k
    });
}

/// Pre-arena REDUCE.
pub fn reduce(f: &mut Cover, d: &Cover) {
    let space = f.space().clone();
    let n = f.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(f.cubes()[i].count_ones()));

    for &i in &order {
        let mut rest_cubes: Vec<Cube> = Vec::with_capacity(n - 1 + d.len());
        for (j, c) in f.iter().enumerate() {
            if j != i {
                rest_cubes.push(c.clone());
            }
        }
        rest_cubes.extend(d.iter().cloned());
        let rest = Cover::from_cubes(space.clone(), rest_cubes);

        let mut c = f.cubes()[i].clone();
        loop {
            let mut changed = false;
            for v in space.vars() {
                if c.var_count(&space, v) <= 1 {
                    continue;
                }
                for p in 0..space.parts(v) {
                    if !c.has_part(&space, v, p) {
                        continue;
                    }
                    if c.var_count(&space, v) <= 1 {
                        break;
                    }
                    let mut slice = c.clone();
                    slice.clear_var(&space, v);
                    slice.set_part(&space, v, p);
                    if cube_in_cover(&rest, &slice) {
                        c.clear_part(&space, v, p);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        f.cubes_mut()[i] = c;
    }
}

fn reduce_cube_against(f: &Cover, d: &Cover, i: usize) -> Cube {
    let space = f.space().clone();
    let mut rest_cubes: Vec<Cube> = Vec::with_capacity(f.len() - 1 + d.len());
    for (j, c) in f.iter().enumerate() {
        if j != i {
            rest_cubes.push(c.clone());
        }
    }
    rest_cubes.extend(d.iter().cloned());
    let rest = Cover::from_cubes(space.clone(), rest_cubes);

    let mut c = f.cubes()[i].clone();
    loop {
        let mut changed = false;
        for v in space.vars() {
            for p in 0..space.parts(v) {
                if !c.has_part(&space, v, p) || c.var_count(&space, v) <= 1 {
                    continue;
                }
                let mut slice = c.clone();
                slice.clear_var(&space, v);
                slice.set_part(&space, v, p);
                if cube_in_cover(&rest, &slice) {
                    c.clear_part(&space, v, p);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    c
}

/// Pre-arena IRREDUNDANT.
pub fn irredundant(f: &mut Cover, d: &Cover) {
    let space = f.space().clone();
    absorb_in_place(&space, f.cubes_mut());
    let mut order: Vec<usize> = (0..f.len()).collect();
    order.sort_by_key(|&i| f.cubes()[i].count_ones());

    let mut removed = vec![false; f.len()];
    for &i in &order {
        let mut rest: Vec<Cube> = Vec::with_capacity(f.len() + d.len());
        for (j, c) in f.iter().enumerate() {
            if j != i && !removed[j] {
                rest.push(c.clone());
            }
        }
        rest.extend(d.iter().cloned());
        let rest = Cover::from_cubes(space.clone(), rest);
        if cube_in_cover(&rest, &f.cubes()[i]) {
            removed[i] = true;
        }
    }
    let mut idx = 0;
    f.cubes_mut().retain(|_| {
        let k = !removed[idx];
        idx += 1;
        k
    });
}

fn relatively_essential(f: &Cover, d: &Cover) -> Vec<usize> {
    let space = f.space().clone();
    let mut out = Vec::new();
    for i in 0..f.len() {
        let mut rest: Vec<Cube> = Vec::with_capacity(f.len() + d.len());
        for (j, c) in f.iter().enumerate() {
            if j != i {
                rest.push(c.clone());
            }
        }
        rest.extend(d.iter().cloned());
        let rest = Cover::from_cubes(space.clone(), rest);
        if !cube_in_cover(&rest, &f.cubes()[i]) {
            out.push(i);
        }
    }
    out
}

/// Pre-arena ESPRESSO minimization loop (default-option entry).
pub fn minimize(f: &Cover, d: &Cover) -> Cover {
    minimize_with(f, d, MinimizeOptions::default()).0
}

/// Pre-arena ESPRESSO minimization loop with explicit options.
pub fn minimize_with(f: &Cover, d: &Cover, opts: MinimizeOptions) -> (Cover, MinimizeStats) {
    let initial_cubes = f.len();
    let mut cur = f.clone();
    absorb_in_place(&cur.space().clone(), cur.cubes_mut());
    if cur.is_empty() {
        return (
            cur,
            MinimizeStats {
                initial_cubes,
                final_cubes: 0,
                iterations: 0,
            },
        );
    }

    expand(&mut cur, d);
    irredundant(&mut cur, d);

    let mut essentials = Cover::empty(cur.space().clone());
    let mut d_aug = d.clone();
    if opts.essentials && !opts.single_pass {
        let ess = relatively_essential(&cur, d);
        if !ess.is_empty() && ess.len() < cur.len() {
            let mut rest = Vec::new();
            for (i, c) in cur.iter().enumerate() {
                if ess.contains(&i) {
                    essentials.push(c.clone());
                    d_aug.push(c.clone());
                } else {
                    rest.push(c.clone());
                }
            }
            cur = Cover::from_cubes(cur.space().clone(), rest);
        }
    }

    let with_essentials = |c: &Cover| -> Cover {
        let mut out = essentials.clone();
        for cube in c.iter() {
            out.push(cube.clone());
        }
        out
    };
    let mut best = with_essentials(&cur);
    let mut best_cost: CoverCost = best.cost();
    let mut iterations = 0;

    if !opts.single_pass {
        loop {
            let mut improved = false;
            for _ in 0..opts.max_iterations {
                iterations += 1;
                reduce(&mut cur, &d_aug);
                expand(&mut cur, &d_aug);
                irredundant(&mut cur, &d_aug);
                let full = with_essentials(&cur);
                let cost = full.cost();
                if cost < best_cost {
                    best = full;
                    best_cost = cost;
                    improved = true;
                } else {
                    break;
                }
            }
            if !opts.last_gasp {
                break;
            }
            let gasped = last_gasp(&mut cur, &d_aug);
            if !gasped {
                break;
            }
            let full = with_essentials(&cur);
            let cost = full.cost();
            if cost < best_cost {
                best = full;
                best_cost = cost;
            } else if !improved {
                break;
            }
        }
    }

    if opts.verify {
        assert!(
            verify_minimized(&best, f, d),
            "espresso contract violated: F ⊆ M ⊆ F ∪ D does not hold"
        );
    }
    let final_cubes = best.len();
    (
        best,
        MinimizeStats {
            initial_cubes,
            final_cubes,
            iterations,
        },
    )
}

fn last_gasp(f: &mut Cover, d: &Cover) -> bool {
    let space = f.space().clone();
    let n = f.len();
    if n < 2 {
        return false;
    }
    let mut reduced: Vec<Cube> = Vec::with_capacity(n);
    for i in 0..n {
        reduced.push(reduce_cube_against(f, d, i));
    }
    let mut additions: Vec<Cube> = Vec::new();
    let oracle = {
        let mut cubes: Vec<Cube> = f.cubes().to_vec();
        cubes.extend(d.iter().cloned());
        Cover::from_cubes(space.clone(), cubes)
    };
    for g in &reduced {
        let mut c = g.clone();
        for v in space.vars() {
            for p in 0..space.parts(v) {
                if !c.has_part(&space, v, p) {
                    let mut t = c.clone();
                    t.set_part(&space, v, p);
                    if cube_in_cover(&oracle, &t) {
                        c = t;
                    }
                }
            }
        }
        let covered = reduced.iter().filter(|r| r.is_subset_of(&c)).count();
        if covered >= 2 && !f.cubes().contains(&c) && !additions.contains(&c) {
            additions.push(c);
        }
    }
    if additions.is_empty() {
        return false;
    }
    let before = f.cost();
    let mut candidate = f.clone();
    for a in additions {
        candidate.push(a);
    }
    irredundant(&mut candidate, d);
    if candidate.cost() < before {
        *f = candidate;
        true
    } else {
        false
    }
}
