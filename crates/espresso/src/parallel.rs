//! Task-parallel execution of unate-recursion branches.
//!
//! The unate kernels ([`tautology`](crate::tautology),
//! [`complement`](crate::complement), the expand oracle) split a cover into
//! cofactor branches that are independent by construction. This module lets
//! those branches race across a small persistent worker pool while keeping
//! the results bit-identical to the sequential order:
//!
//! * Each task writes only to its own pre-assigned output slot
//!   ([`DisjointSlots`]); the caller stitches slots back together in index
//!   order, so the merged result never depends on completion order.
//! * Workers are detached process-lifetime threads, each owning a private
//!   [`Scratch`] pool — after warm-up a parallel dispatch performs no heap
//!   allocation (no per-call `thread::scope`, no channel, no boxed closures).
//! * Kernels never touch [`RunCtl`](crate::ctl::RunCtl) budgets; charges are
//!   applied per pass by the minimizer on the calling thread, so charge
//!   parity, fault-injection offsets and chaos replay are unaffected by how
//!   many workers raced.
//!
//! The pool accepts one dispatch at a time. Nested or concurrent dispatches
//! (a parallel branch that itself wants to fan out, or two minimizations in
//! different threads) detect the busy pool and simply run their indices
//! inline on the calling thread — still correct, just sequential.
//!
//! Parallelism is requested ambiently: [`with_ambient_jobs`] scopes a job
//! count onto the calling thread and the kernels read it via
//! [`ambient_jobs`], so the recursive APIs did not have to grow a parameter.

use crate::scratch::Scratch;
use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

thread_local! {
    static AMBIENT: Cell<usize> = const { Cell::new(1) };
}

/// The job count scoped onto this thread (1 = sequential).
pub fn ambient_jobs() -> usize {
    AMBIENT.with(|c| c.get()).max(1)
}

/// Runs `f` with `jobs` as this thread's ambient parallelism, restoring the
/// previous value afterwards (also on unwind).
pub fn with_ambient_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|c| c.set(self.0));
        }
    }
    let prev = AMBIENT.with(|c| {
        let p = c.get();
        c.set(jobs.max(1));
        p
    });
    let _restore = Restore(prev);
    f()
}

/// Resolves a user-facing jobs knob: `0` means "all available cores".
pub fn resolve_jobs(requested: usize) -> usize {
    if requested != 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A mutable slice shared across tasks under the disjoint-index contract:
/// task `i` touches only slot `i`, so no two tasks alias.
pub(crate) struct DisjointSlots<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: slots are handed out by index and the run_tasks contract gives
// each index to exactly one task, so cross-thread access never aliases.
unsafe impl<T: Send> Sync for DisjointSlots<'_, T> {}
unsafe impl<T: Send> Send for DisjointSlots<'_, T> {}

impl<'a, T> DisjointSlots<'a, T> {
    pub fn new(slots: &'a mut [T]) -> Self {
        DisjointSlots {
            ptr: slots.as_mut_ptr(),
            len: slots.len(),
            _marker: PhantomData,
        }
    }

    /// Exclusive access to slot `i`.
    ///
    /// # Safety
    /// Each index must be accessed by at most one task at a time (the
    /// [`run_tasks`] index assignment guarantees this when `i` is the task
    /// index).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Type-erased task pointer stored in the pool while a dispatch is live.
/// Only dereferenced between job installation and the caller observing
/// `remaining == 0`, which happens before `run_tasks` returns — so the
/// borrow it was created from is always still alive.
struct TaskPtr(*const (dyn Fn(usize, &mut Scratch) + Sync));

// SAFETY: the pointee is `Sync` and the pool's protocol (above) keeps every
// dereference within the originating borrow's lifetime.
unsafe impl Send for TaskPtr {}

struct PoolState {
    task: Option<TaskPtr>,
    n: usize,
    next: usize,
    remaining: usize,
    generation: u64,
    workers: usize,
    panicked: bool,
}

struct Pool {
    busy: AtomicBool,
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

static POOL: Pool = Pool {
    busy: AtomicBool::new(false),
    state: Mutex::new(PoolState {
        task: None,
        n: 0,
        next: 0,
        remaining: 0,
        generation: 0,
        workers: 0,
        panicked: false,
    }),
    work_cv: Condvar::new(),
    done_cv: Condvar::new(),
};

fn worker_loop() {
    let mut scratch = Scratch::new();
    let mut seen_generation = 0u64;
    loop {
        let generation = {
            let mut st = POOL.state.lock().unwrap();
            loop {
                if st.task.is_some() && st.generation != seen_generation && st.next < st.n {
                    seen_generation = st.generation;
                    break;
                }
                st = POOL.work_cv.wait(st).unwrap();
            }
            st.generation
        };
        run_indices(generation, &mut scratch);
    }
}

/// Claims and runs indices of the current job until none remain (or the job
/// changed under us, which only happens after all its indices completed).
fn run_indices(generation: u64, scratch: &mut Scratch) {
    loop {
        let (task, i) = {
            let mut st = POOL.state.lock().unwrap();
            if st.generation != generation || st.next >= st.n {
                return;
            }
            let i = st.next;
            st.next += 1;
            (st.task.as_ref().unwrap().0, i)
        };
        // SAFETY: see TaskPtr — the dispatch that installed `task` is still
        // blocked in run_tasks until we decrement `remaining` below.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*task)(i, scratch) }));
        let mut st = POOL.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            POOL.done_cv.notify_all();
        }
    }
}

/// Runs `task(i, scratch)` for every `i in 0..n`, racing across up to `jobs`
/// threads (the caller participates; `jobs - 1` pool workers join in).
///
/// Contract for determinism: `task` must write only to per-index output
/// slots — given that, the stitched result is independent of scheduling.
/// With `jobs <= 1`, a trivial `n`, or a busy pool (nested / concurrent
/// dispatch) every index runs inline on the caller with its own scratch.
///
/// A panic in any task is caught, the remaining indices still run (so the
/// pool drains), and the panic is re-raised on the caller.
pub(crate) fn run_tasks(
    jobs: usize,
    n: usize,
    caller_scratch: &mut Scratch,
    task: &(dyn Fn(usize, &mut Scratch) + Sync),
) {
    let jobs = jobs.min(n).max(1);
    if jobs <= 1 || n <= 1 || POOL.busy.swap(true, Ordering::Acquire) {
        run_inline(n, caller_scratch, task);
        return;
    }
    // SAFETY: lifetime erasure only — the pool's protocol (see TaskPtr)
    // guarantees every dereference happens before run_tasks returns, i.e.
    // within `task`'s real lifetime.
    let erased = unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize, &mut Scratch) + Sync + '_),
            *const (dyn Fn(usize, &mut Scratch) + Sync + 'static),
        >(task)
    };
    let generation = {
        let mut st = POOL.state.lock().unwrap();
        st.generation += 1;
        st.task = Some(TaskPtr(erased));
        st.n = n;
        st.next = 0;
        st.remaining = n;
        st.panicked = false;
        while st.workers < jobs - 1 {
            let spawned = std::thread::Builder::new()
                .name("espresso-kernel".into())
                .spawn(worker_loop)
                .is_ok();
            if !spawned {
                break;
            }
            st.workers += 1;
        }
        st.generation
    };
    POOL.work_cv.notify_all();
    run_indices(generation, caller_scratch);
    let panicked = {
        let mut st = POOL.state.lock().unwrap();
        while st.remaining > 0 {
            st = POOL.done_cv.wait(st).unwrap();
        }
        st.task = None;
        st.panicked
    };
    POOL.busy.store(false, Ordering::Release);
    if panicked {
        panic!("espresso parallel task panicked");
    }
}

fn run_inline(n: usize, scratch: &mut Scratch, task: &(dyn Fn(usize, &mut Scratch) + Sync)) {
    let mut panicked = false;
    for i in 0..n {
        if catch_unwind(AssertUnwindSafe(|| task(i, scratch))).is_err() {
            panicked = true;
        }
    }
    if panicked {
        panic!("espresso parallel task panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let mut s = Scratch::new();
        run_tasks(4, hits.len(), &mut s, &|i, _s| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn disjoint_slots_collect_per_index_results() {
        let mut out = vec![0usize; 33];
        let slots = DisjointSlots::new(&mut out);
        let mut s = Scratch::new();
        run_tasks(3, 33, &mut s, &|i, _s| {
            // SAFETY: task index == slot index, each claimed once.
            *unsafe { slots.get(i) } = i * i;
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn nested_dispatch_falls_back_inline() {
        let hits: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let mut s = Scratch::new();
        run_tasks(2, 2, &mut s, &|outer, inner_scratch| {
            run_tasks(2, 4, inner_scratch, &|i, _s| {
                hits[outer * 4 + i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn panic_propagates_and_pool_stays_usable() {
        let mut s = Scratch::new();
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(2, 8, &mut s, &|i, _s| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        let hits: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        run_tasks(2, hits.len(), &mut s, &|i, _s| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn ambient_jobs_scope_and_restore() {
        assert_eq!(ambient_jobs(), 1);
        let inner = with_ambient_jobs(6, || {
            let nested = with_ambient_jobs(2, ambient_jobs);
            (ambient_jobs(), nested)
        });
        assert_eq!(inner, (6, 2));
        assert_eq!(ambient_jobs(), 1);
        assert_eq!(with_ambient_jobs(0, ambient_jobs), 1, "0 clamps to 1");
    }

    #[test]
    fn resolve_jobs_zero_means_all_cores() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }
}
