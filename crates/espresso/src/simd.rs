//! Chunked bit-parallel word kernels with runtime SIMD dispatch.
//!
//! The cube kernels operate on rows of `u64` words. This module provides the
//! word-level primitives they share — subset tests, OR folds, popcounts,
//! strided column folds — written over [`CHUNK`]-word lanes so the portable
//! path auto-vectorizes, plus runtime-dispatched AVX2 variants behind
//! `is_x86_feature_detected!` for the long-row cases where explicit 256-bit
//! lanes beat what the autovectorizer emits.
//!
//! Dispatch is decided once per process ([`dispatch_tier`]) and recorded in
//! traces as the one-time `espresso.simd.dispatch.*` counter (flushed by
//! [`minimize_with_ctl`](crate::minimize::minimize_with_ctl) on the first
//! minimization of the process).
//!
//! Correctness note: every wide path computes the exact same function as the
//! portable path (pure bitwise algebra, no reassociation of anything
//! order-sensitive), so kernel results are independent of the dispatched
//! tier.

use std::sync::OnceLock;

/// Lane width of the portable chunked loops, in 64-bit words.
pub const CHUNK: usize = 4;

/// Row-word threshold above which the dispatched wide paths are consulted;
/// below it the specialized short-row code is always faster.
const WIDE_MIN_WORDS: usize = 8;

/// The instruction tier selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DispatchTier {
    /// Chunked portable `u64` ops (always available).
    Portable = 0,
    /// 256-bit AVX2 lanes on x86-64.
    Avx2 = 1,
}

impl DispatchTier {
    /// Stable name, used for the `espresso.simd.dispatch.*` trace counter.
    pub fn name(self) -> &'static str {
        match self {
            DispatchTier::Portable => "portable",
            DispatchTier::Avx2 => "avx2",
        }
    }
}

/// The tier the running machine dispatches to, decided once per process.
pub fn dispatch_tier() -> DispatchTier {
    static TIER: OnceLock<DispatchTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return DispatchTier::Avx2;
            }
        }
        DispatchTier::Portable
    })
}

/// Word-wise subset test: `a & !b == 0` over equal-length slices.
///
/// Short rows (the overwhelmingly common strides 1–2) take branch-free
/// specializations; longer rows run [`CHUNK`]-word lanes with one early exit
/// per chunk, dispatched to AVX2 when available.
#[inline]
pub fn subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    match a.len() {
        0 => true,
        1 => a[0] & !b[0] == 0,
        2 => (a[0] & !b[0]) | (a[1] & !b[1]) == 0,
        3 => (a[0] & !b[0]) | (a[1] & !b[1]) | (a[2] & !b[2]) == 0,
        _ => subset_long(a, b),
    }
}

fn subset_long(a: &[u64], b: &[u64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if a.len() >= WIDE_MIN_WORDS && dispatch_tier() == DispatchTier::Avx2 {
        // SAFETY: the AVX2 feature was detected at runtime.
        return unsafe { subset_avx2(a, b) };
    }
    subset_chunked(a, b)
}

#[inline]
fn subset_chunked(a: &[u64], b: &[u64]) -> bool {
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        let mut acc = 0u64;
        for k in 0..CHUNK {
            acc |= ca[k] & !cb[k];
        }
        if acc != 0 {
            return false;
        }
    }
    ac.remainder()
        .iter()
        .zip(bc.remainder())
        .all(|(x, y)| x & !y == 0)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn subset_avx2(a: &[u64], b: &[u64]) -> bool {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut i = 0;
    unsafe {
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            // andnot(b, a) = a & !b; testz returns 1 iff the result is zero.
            if _mm256_testz_si256(_mm256_andnot_si256(vb, va), _mm256_andnot_si256(vb, va)) == 0 {
                return false;
            }
            i += 4;
        }
    }
    a[i..].iter().zip(&b[i..]).all(|(x, y)| x & !y == 0)
}

/// OR-fold of a word slice (used for orbit signatures and stride-1 column
/// checks, where the whole matrix is one flat array).
#[inline]
pub fn or_fold(a: &[u64]) -> u64 {
    if a.len() < WIDE_MIN_WORDS {
        return a.iter().fold(0, |acc, &w| acc | w);
    }
    #[cfg(target_arch = "x86_64")]
    if dispatch_tier() == DispatchTier::Avx2 {
        // SAFETY: the AVX2 feature was detected at runtime.
        return unsafe { or_fold_avx2(a) };
    }
    or_fold_chunked(a)
}

#[inline]
fn or_fold_chunked(a: &[u64]) -> u64 {
    let mut lanes = [0u64; CHUNK];
    let mut c = a.chunks_exact(CHUNK);
    for ca in c.by_ref() {
        for k in 0..CHUNK {
            lanes[k] |= ca[k];
        }
    }
    let tail = c.remainder().iter().fold(0, |acc, &w| acc | w);
    lanes.iter().fold(tail, |acc, &w| acc | w)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn or_fold_avx2(a: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut i = 0;
    let mut acc;
    unsafe {
        acc = _mm256_setzero_si256();
        while i + 4 <= n {
            let v = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            acc = _mm256_or_si256(acc, v);
            i += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        a[i..]
            .iter()
            .fold(lanes[0] | lanes[1] | lanes[2] | lanes[3], |s, &w| s | w)
    }
}

/// Popcount sum over a word slice.
#[inline]
pub fn ones(a: &[u64]) -> u32 {
    // Chunked so the counts run in independent dependency chains; popcnt is
    // already one instruction per word on every supported tier.
    let mut lanes = [0u32; CHUNK];
    let mut c = a.chunks_exact(CHUNK);
    for ca in c.by_ref() {
        for k in 0..CHUNK {
            lanes[k] += ca[k].count_ones();
        }
    }
    let tail: u32 = c.remainder().iter().map(|w| w.count_ones()).sum();
    lanes.iter().sum::<u32>() + tail
}

/// Column fold of a row-major matrix: `acc[k] |= OR over rows of word k`,
/// for `words.len() / stride` rows of `stride` words. `acc` must be `stride`
/// long. The stride-1 case — most NOVA covers — collapses to one flat
/// [`or_fold`] over the whole arena.
pub fn fold_or_strided(words: &[u64], stride: usize, acc: &mut [u64]) {
    debug_assert_eq!(acc.len(), stride);
    debug_assert_eq!(words.len() % stride.max(1), 0);
    if stride == 1 {
        acc[0] |= or_fold(words);
        return;
    }
    for row in words.chunks_exact(stride) {
        for (a, w) in acc.iter_mut().zip(row) {
            *a |= w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64, to exercise the wide paths with irregular data.
    fn rng_stream(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn subset_matches_reference_across_widths() {
        for n in 0..=20 {
            let a = rng_stream(7 + n as u64, n);
            for case in 0..4 {
                let b: Vec<u64> = match case {
                    0 => a.clone(),                                    // equal
                    1 => a.iter().map(|w| w | 0xf0f0).collect(),       // superset
                    2 => a.iter().map(|w| w & !0x8000_0001).collect(), // subset-ish
                    _ => rng_stream(99 + n as u64, n),                 // unrelated
                };
                let reference = a.iter().zip(&b).all(|(x, y)| x & !y == 0);
                assert_eq!(subset(&a, &b), reference, "n={n} case={case}");
            }
        }
    }

    #[test]
    fn folds_match_reference_across_widths() {
        for n in 0..=40 {
            let a = rng_stream(n as u64, n);
            assert_eq!(or_fold(&a), a.iter().fold(0, |s, &w| s | w), "n={n}");
            assert_eq!(
                ones(&a),
                a.iter().map(|w| w.count_ones()).sum::<u32>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn strided_column_fold() {
        for stride in 1..=5usize {
            let rows = 7;
            let words = rng_stream(13, rows * stride);
            let mut acc = vec![0u64; stride];
            fold_or_strided(&words, stride, &mut acc);
            let mut reference = vec![0u64; stride];
            for r in 0..rows {
                for k in 0..stride {
                    reference[k] |= words[r * stride + k];
                }
            }
            assert_eq!(acc, reference, "stride={stride}");
        }
    }

    #[test]
    fn dispatch_tier_is_stable() {
        assert_eq!(dispatch_tier(), dispatch_tier());
        assert!(!dispatch_tier().name().is_empty());
    }
}
