//! Algebraic factoring: kernels, weak division, and factored-form literal
//! counts.
//!
//! This module is the stand-in for the multilevel optimization step the NOVA
//! paper performs with MIS-II (Table VII): a two-level cover is turned into a
//! factored form by recursive kernel extraction (the QUICK_FACTOR scheme) and
//! the number of literals of the factored form is reported. Logic sharing
//! *across* outputs is not modeled; each output is factored separately.

use crate::cover::Cover;
use std::collections::BTreeSet;

/// A literal of an algebraic expression: `2*var + polarity`
/// (polarity 1 = positive phase).
pub type Literal = u32;

/// Encodes a literal.
pub fn literal(var: usize, positive: bool) -> Literal {
    (var as u32) << 1 | u32::from(positive)
}

/// An algebraic (single-output) sum-of-products: a set of cubes, each a set
/// of literals. Used only for factoring, not for Boolean reasoning.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Expr {
    cubes: Vec<BTreeSet<Literal>>,
}

impl Expr {
    /// Empty expression (constant 0).
    pub fn new() -> Self {
        Expr::default()
    }

    /// Builds from cube literal-sets, deduplicating identical cubes.
    pub fn from_cubes(cubes: impl IntoIterator<Item = BTreeSet<Literal>>) -> Self {
        let mut v: Vec<BTreeSet<Literal>> = cubes.into_iter().collect();
        v.sort();
        v.dedup();
        Expr { cubes: v }
    }

    /// The cubes.
    pub fn cubes(&self) -> &[BTreeSet<Literal>] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True when the expression has no cubes.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Flat (two-level) literal count.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(BTreeSet::len).sum()
    }

    /// The largest cube dividing every cube of the expression.
    pub fn common_cube(&self) -> BTreeSet<Literal> {
        let mut it = self.cubes.iter();
        let mut acc = match it.next() {
            Some(c) => c.clone(),
            None => return BTreeSet::new(),
        };
        for c in it {
            acc = acc.intersection(c).cloned().collect();
        }
        acc
    }

    /// Quotient of the expression by a single cube: `{ c ∖ d : d ⊆ c }`.
    pub fn divide_by_cube(&self, d: &BTreeSet<Literal>) -> Expr {
        Expr::from_cubes(
            self.cubes
                .iter()
                .filter(|c| d.is_subset(c))
                .map(|c| c.difference(d).cloned().collect()),
        )
    }

    /// Weak (algebraic) division by a multi-cube divisor: returns
    /// `(quotient, remainder)` with `self = quotient·divisor + remainder`
    /// algebraically.
    pub fn divide(&self, divisor: &Expr) -> (Expr, Expr) {
        if divisor.is_empty() {
            return (Expr::new(), self.clone());
        }
        let mut quotient: Option<BTreeSet<BTreeSet<Literal>>> = None;
        for d in &divisor.cubes {
            let q: BTreeSet<BTreeSet<Literal>> = self.divide_by_cube(d).cubes.into_iter().collect();
            quotient = Some(match quotient {
                None => q,
                Some(acc) => acc.intersection(&q).cloned().collect(),
            });
            if quotient.as_ref().is_some_and(BTreeSet::is_empty) {
                break;
            }
        }
        let quotient = Expr::from_cubes(quotient.unwrap_or_default());
        if quotient.is_empty() {
            return (quotient, self.clone());
        }
        // remainder = self minus quotient × divisor
        let mut product: BTreeSet<BTreeSet<Literal>> = BTreeSet::new();
        for q in &quotient.cubes {
            for d in &divisor.cubes {
                product.insert(q.union(d).cloned().collect());
            }
        }
        let remainder =
            Expr::from_cubes(self.cubes.iter().filter(|c| !product.contains(*c)).cloned());
        (quotient, remainder)
    }

    /// Makes the expression cube-free by dividing out its common cube.
    pub fn cube_free(&self) -> Expr {
        let c = self.common_cube();
        if c.is_empty() {
            self.clone()
        } else {
            self.divide_by_cube(&c)
        }
    }

    /// All kernels of the expression (cube-free quotients by cubes),
    /// including the expression itself if cube-free. Standard recursive
    /// co-kernel enumeration.
    pub fn kernels(&self) -> Vec<Expr> {
        let mut out = Vec::new();
        let base = self.cube_free();
        if base.len() > 1 {
            out.push(base.clone());
        }
        let max_lit = base
            .cubes
            .iter()
            .flat_map(|c| c.iter())
            .max()
            .copied()
            .unwrap_or(0);
        kernels_rec(&base, 0, max_lit, &mut out);
        out.sort_by(|a, b| a.cubes.cmp(&b.cubes));
        out.dedup();
        out
    }

    /// A single level-0-ish kernel found quickly by repeated division by the
    /// most frequent literal; `None` when the expression has no non-trivial
    /// kernel (no literal appears twice).
    pub fn quick_kernel(&self) -> Option<Expr> {
        let mut f = self.cube_free();
        loop {
            if f.len() < 2 {
                return None;
            }
            match most_frequent_literal(&f) {
                Some((l, count)) if count >= 2 && count < f.len() => {
                    let mut d = BTreeSet::new();
                    d.insert(l);
                    f = f.divide_by_cube(&d).cube_free();
                }
                Some((l, count)) if count >= 2 => {
                    // literal common to all cubes would be a common cube;
                    // cube_free removed those, so count == len means a bug
                    debug_assert!(count < f.len(), "common literal {l} survived cube_free");
                    return Some(f);
                }
                _ => return Some(f).filter(|k| k.len() >= 2),
            }
        }
    }
}

fn kernels_rec(f: &Expr, from: Literal, max_lit: Literal, out: &mut Vec<Expr>) {
    for l in from..=max_lit {
        let count = f.cubes.iter().filter(|c| c.contains(&l)).count();
        if count < 2 {
            continue;
        }
        let mut d = BTreeSet::new();
        d.insert(l);
        let q = f.divide_by_cube(&d);
        let common = q.common_cube();
        // Skip if a smaller literal in the common cube would re-generate this
        // kernel (standard duplicate pruning).
        if common.iter().any(|&c| c < l) {
            continue;
        }
        let k = q.cube_free();
        if k.len() > 1 {
            out.push(k.clone());
            kernels_rec(&k, l + 1, max_lit, out);
        }
    }
}

fn most_frequent_literal(f: &Expr) -> Option<(Literal, usize)> {
    let mut counts: std::collections::BTreeMap<Literal, usize> = Default::default();
    for c in &f.cubes {
        for &l in c {
            *counts.entry(l).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(l, n)| (n, std::cmp::Reverse(l)))
}

/// Number of literals of the QUICK_FACTOR factored form of the expression.
///
/// # Examples
///
/// ```
/// use espresso::factor::{literal, Expr};
/// use std::collections::BTreeSet;
///
/// // f = ab + ac  →  a(b + c): 3 literals instead of 4.
/// let a = literal(0, true);
/// let b = literal(1, true);
/// let c = literal(2, true);
/// let f = Expr::from_cubes(vec![
///     BTreeSet::from([a, b]),
///     BTreeSet::from([a, c]),
/// ]);
/// assert_eq!(espresso::factor::factored_literal_count(&f), 3);
/// ```
pub fn factored_literal_count(f: &Expr) -> usize {
    if f.is_empty() {
        return 0;
    }
    if f.len() == 1 {
        return f.cubes[0].len();
    }
    // Factor out the common cube first.
    let common = f.common_cube();
    if !common.is_empty() {
        return common.len() + factored_literal_count(&f.divide_by_cube(&common));
    }
    let Some((best_l, count)) = most_frequent_literal(f) else {
        return 0;
    };
    if count < 2 {
        return f.literal_count(); // nothing algebraic to share
    }
    if let Some(k) = f.quick_kernel() {
        if k != *f {
            let (q, r) = f.divide(&k);
            if !q.is_empty() {
                return factored_literal_count(&q)
                    + factored_literal_count(&k)
                    + factored_literal_count(&r);
            }
        }
    }
    // Fallback: literal division f = l·(f/l) + r.
    let mut d = BTreeSet::new();
    d.insert(best_l);
    let q = f.divide_by_cube(&d);
    let r = Expr::from_cubes(f.cubes.iter().filter(|c| !c.contains(&best_l)).cloned());
    1 + factored_literal_count(&q) + factored_literal_count(&r)
}

/// Extracts the single-output algebraic expression of output `o` from a
/// binary multi-output cover (cubes asserting `o`; binary input literals
/// only).
///
/// # Panics
///
/// Panics if the cover's space has no output variable.
pub fn output_expr(cover: &Cover, o: u32) -> Expr {
    let space = cover.space();
    let ov = space.output_var().expect("cover needs an output variable");
    let mut cubes = Vec::new();
    for c in cover.iter() {
        if !c.has_part(space, ov, o) {
            continue;
        }
        let mut lits = BTreeSet::new();
        for v in space.vars() {
            if v == ov || c.var_is_full(space, v) {
                continue;
            }
            debug_assert_eq!(space.parts(v), 2, "factoring expects binary inputs");
            if c.has_part(space, v, 1) {
                lits.insert(literal(v, true));
            } else {
                lits.insert(literal(v, false));
            }
        }
        cubes.push(lits);
    }
    Expr::from_cubes(cubes)
}

/// Total factored-form literal count of a binary multi-output cover: each
/// output factored independently (no inter-output sharing), summed.
pub fn cover_factored_literals(cover: &Cover) -> usize {
    let space = cover.space();
    let ov = match space.output_var() {
        Some(v) => v,
        None => return 0,
    };
    (0..space.parts(ov))
        .map(|o| factored_literal_count(&output_expr(cover, o)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(cubes: &[&[Literal]]) -> Expr {
        Expr::from_cubes(cubes.iter().map(|c| c.iter().copied().collect()))
    }

    const A: Literal = 1; // var0 positive
    const B: Literal = 3;
    const C: Literal = 5;
    const D: Literal = 7;
    const E: Literal = 9;

    #[test]
    fn division_basics() {
        // f = abc + abd + e; f / ab = c + d, remainder e
        let f = expr(&[&[A, B, C], &[A, B, D], &[E]]);
        let q = f.divide_by_cube(&BTreeSet::from([A, B]));
        assert_eq!(q, expr(&[&[C], &[D]]));
        let (qq, r) = f.divide(&expr(&[&[C], &[D]]));
        assert_eq!(qq, expr(&[&[A, B]]));
        assert_eq!(r, expr(&[&[E]]));
    }

    #[test]
    fn weak_division_intersects_quotients() {
        // f = ac + ad + bc + e; f / (c + d) = a (only a works for both)
        let f = expr(&[&[A, C], &[A, D], &[B, C], &[E]]);
        let (q, r) = f.divide(&expr(&[&[C], &[D]]));
        assert_eq!(q, expr(&[&[A]]));
        assert_eq!(r, expr(&[&[B, C], &[E]]));
    }

    #[test]
    fn kernels_of_textbook_example() {
        // f = ace + bce + de + g  (classic): kernels include (a+b),
        // (ac+bc+d) = c(a+b)+d, and f itself.
        let g = 11;
        let f = expr(&[&[A, C, E], &[B, C, E], &[D, E], &[g]]);
        let ks = f.kernels();
        assert!(ks.contains(&expr(&[&[A], &[B]])));
        assert!(ks.contains(&expr(&[&[A, C], &[B, C], &[D]])));
        assert!(ks.contains(&f));
    }

    #[test]
    fn factoring_shares_common_factor() {
        // f = ab + ac → a(b+c): 3 literals
        let f = expr(&[&[A, B], &[A, C]]);
        assert_eq!(factored_literal_count(&f), 3);
    }

    #[test]
    fn factoring_textbook_count() {
        // f = ace + bce + de + g → e(c(a+b) + d) + g : 7 literals
        let g = 11;
        let f = expr(&[&[A, C, E], &[B, C, E], &[D, E], &[g]]);
        assert_eq!(factored_literal_count(&f), 7);
    }

    #[test]
    fn factoring_cannot_beat_flat_when_nothing_shared() {
        let f = expr(&[&[A, B], &[C, D]]);
        assert_eq!(factored_literal_count(&f), 4);
    }

    #[test]
    fn single_cube_counts_its_literals() {
        let f = expr(&[&[A, B, C]]);
        assert_eq!(factored_literal_count(&f), 3);
    }

    #[test]
    fn output_expr_extraction() {
        use crate::space::CubeSpace;
        let sp = CubeSpace::binary_with_output(2, 2);
        let mut cov = Cover::empty(sp.clone());
        cov.push_parsed("01 10 10").unwrap(); // x y' -> f0 (part 1 = positive)
        cov.push_parsed("01 11 11").unwrap(); // x -> f0, f1
        let e0 = output_expr(&cov, 0);
        assert_eq!(e0.len(), 2);
        let e1 = output_expr(&cov, 1);
        assert_eq!(e1.len(), 1);
        assert_eq!(e1.cubes()[0], BTreeSet::from([literal(0, true)]));
    }

    #[test]
    fn cover_literals_sum_outputs() {
        use crate::space::CubeSpace;
        let sp = CubeSpace::binary_with_output(3, 2);
        let mut cov = Cover::empty(sp.clone());
        cov.push_parsed("10 10 11 10").unwrap(); // ab -> f0
        cov.push_parsed("10 11 10 10").unwrap(); // ac -> f0
        cov.push_parsed("01 11 11 01").unwrap(); // a' -> f1
                                                 // f0 = ab + ac → a(b+c): 3; f1 = a': 1
        assert_eq!(cover_factored_literals(&cov), 4);
    }
}
