//! IRREDUNDANT: drop cubes whose minterms are already covered elsewhere.
//!
//! The "rest of the cover" oracle lives in a scratch
//! [`CubeMatrix`](crate::matrix::CubeMatrix) rebuilt in place per candidate
//! cube, so redundancy testing performs no per-cube `Cover` allocation.

use crate::cover::Cover;
use crate::matrix::Sig;
use crate::scratch::with_scratch;
use crate::tautology::cube_in_matrix;

/// Removes redundant cubes from `f` (greedy, smallest-first) so that no
/// remaining cube is covered by the rest of the cover plus `d`.
///
/// The result is an irredundant cover of the same function. Greedy removal
/// is not guaranteed minimum (that is a covering problem), but matches
/// ESPRESSO's heuristic quality for the benchmark sizes this crate targets.
pub fn irredundant(f: &mut Cover, d: &Cover) {
    let space = f.space().clone();
    f.absorb();
    // Try to remove cheap cubes first so the valuable big cubes stay.
    let mut order: Vec<usize> = (0..f.len()).collect();
    order.sort_by_key(|&i| f.cubes()[i].count_ones());

    let mut removed = vec![false; f.len()];
    with_scratch(|s| {
        for &i in &order {
            let mut rest = s.acquire(&space);
            for (j, c) in f.iter().enumerate() {
                if j != i && !removed[j] {
                    rest.push_cube(&space, c);
                }
            }
            rest.extend_cubes(&space, d.iter());
            let c = &f.cubes()[i];
            let sig = Sig::of(&space, c.words());
            if cube_in_matrix(&space, &rest, c.words(), sig, s) {
                removed[i] = true;
            }
            s.release(rest);
        }
    });
    let mut idx = 0;
    f.cubes_mut().retain(|_| {
        let k = !removed[idx];
        idx += 1;
        k
    });
}

/// The relatively-essential cubes of `f`: those **not** covered by the rest
/// of the cover plus `d`. Every minimal cover of the function must retain
/// them (when `f` consists of primes).
pub fn relatively_essential(f: &Cover, d: &Cover) -> Vec<usize> {
    let space = f.space().clone();
    let mut out = Vec::new();
    with_scratch(|s| {
        for i in 0..f.len() {
            let mut rest = s.acquire(&space);
            for (j, c) in f.iter().enumerate() {
                if j != i {
                    rest.push_cube(&space, c);
                }
            }
            rest.extend_cubes(&space, d.iter());
            let c = &f.cubes()[i];
            let sig = Sig::of(&space, c.words());
            if !cube_in_matrix(&space, &rest, c.words(), sig, s) {
                out.push(i);
            }
            s.release(rest);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::CubeSpace;
    use crate::tautology::{covers_equivalent, verify_minimized};

    fn cover(space: &CubeSpace, strs: &[&str]) -> Cover {
        let mut f = Cover::empty(space.clone());
        for s in strs {
            f.push_parsed(s).unwrap();
        }
        f
    }

    #[test]
    fn removes_consensus_cube() {
        let sp = CubeSpace::binary_with_output(2, 1);
        // x y' + x' y ... plus the redundant cube covered by x + y:
        let mut f = cover(&sp, &["10 11 1", "11 10 1", "10 10 1"]);
        let orig = f.clone();
        let d = Cover::empty(sp.clone());
        irredundant(&mut f, &d);
        assert_eq!(f.len(), 2);
        assert!(covers_equivalent(&f, &orig));
    }

    #[test]
    fn keeps_needed_cubes() {
        let sp = CubeSpace::binary_with_output(2, 1);
        let mut f = cover(&sp, &["10 01 1", "01 10 1"]);
        let orig = f.clone();
        let d = Cover::empty(sp.clone());
        irredundant(&mut f, &d);
        assert_eq!(f, orig);
    }

    #[test]
    fn uses_dont_cares_for_redundancy() {
        let sp = CubeSpace::binary_with_output(2, 1);
        // Cube xy is redundant because DC covers it entirely... then the
        // remaining cover must still cover ON (empty here), fine.
        let mut f = cover(&sp, &["10 10 1"]);
        let d = cover(&sp, &["10 10 1"]);
        irredundant(&mut f, &d);
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn jointly_redundant_pair_keeps_one() {
        let sp = CubeSpace::binary_with_output(2, 1);
        // Two identical cubes: absorption already removes one.
        let mut f = cover(&sp, &["10 11 1", "10 11 1"]);
        let d = Cover::empty(sp.clone());
        irredundant(&mut f, &d);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn relatively_essential_detection() {
        let sp = CubeSpace::binary_with_output(2, 1);
        let f = cover(&sp, &["10 11 1", "11 10 1", "10 10 1"]);
        let d = Cover::empty(sp.clone());
        let ess = relatively_essential(&f, &d);
        // The two big cubes are essential; the consensus cube is not.
        assert_eq!(ess, vec![0, 1]);
    }

    #[test]
    fn irredundant_preserves_function() {
        let sp = CubeSpace::binary_with_output(3, 2);
        let mut f = cover(
            &sp,
            &[
                "10 11 11 10",
                "11 10 11 10",
                "10 10 11 10",
                "11 11 01 01",
                "10 11 01 01",
            ],
        );
        let orig = f.clone();
        let d = Cover::empty(sp.clone());
        irredundant(&mut f, &d);
        assert!(verify_minimized(&f, &orig, &d));
        assert!(f.len() < orig.len());
    }

    #[test]
    fn irredundant_matches_legacy() {
        use crate::legacy;
        let sp = CubeSpace::binary_with_output(3, 2);
        let cases: &[&[&str]] = &[
            &["10 11 11 10", "11 10 11 10", "10 10 11 10", "11 11 01 01"],
            &["10 11 11 11", "11 10 11 11", "10 10 11 11", "01 01 11 11"],
        ];
        for fs in cases {
            let mut ours = cover(&sp, fs);
            let mut theirs = ours.clone();
            let d = Cover::empty(sp.clone());
            irredundant(&mut ours, &d);
            legacy::irredundant(&mut theirs, &d);
            assert_eq!(ours, theirs, "case {fs:?}");
        }
    }
}
