//! # espresso — a two-level, multiple-valued logic minimizer
//!
//! A from-scratch Rust implementation of the ESPRESSO-MV algorithm family,
//! built as the logic-minimization substrate of the NOVA state-assignment
//! reproduction. It provides:
//!
//! * **Positional cube notation** over mixed binary / multiple-valued
//!   variables ([`CubeSpace`], [`Cube`], [`Cover`]).
//! * The **unate recursive paradigm**: exact [`tautology()`] checking, exact
//!   cube/cover containment, and [`complement()`]ation.
//! * The **ESPRESSO loop**: [`expand`](expand::expand) to primes,
//!   [`irredundant`](irredundant::irredundant) cover extraction,
//!   [`reduce`](reduce::reduce), iterated by [`minimize()`].
//! * **PLA text I/O** ([`pla::parse_pla`], [`pla::write_pla`]).
//! * **Algebraic factoring** ([`factor`]) — kernels, weak division and
//!   QUICK_FACTOR literal counts, standing in for MIS-II in multilevel
//!   comparisons.
//!
//! ## Quick example
//!
//! ```
//! use espresso::{minimize, Cover, CubeSpace};
//!
//! // f(x, y) = x·y + x·y' + x'·y  minimizes to  x + y.
//! let space = CubeSpace::binary_with_output(2, 1);
//! let mut f = Cover::empty(space.clone());
//! f.push_parsed("10 10 1").unwrap();
//! f.push_parsed("10 01 1").unwrap();
//! f.push_parsed("01 10 1").unwrap();
//! let m = minimize(&f, &Cover::empty(space));
//! assert_eq!(m.len(), 2);
//! ```
//!
//! The minimizer is heuristic (like ESPRESSO): it guarantees
//! `F ⊆ M ⊆ F ∪ D` and irredundancy/primality of the result, not global
//! minimality.

pub mod complement;
pub mod containment;
pub mod cover;
pub mod ctl;
pub mod cube;
pub mod exact;
pub mod expand;
pub mod factor;
pub mod fault;
pub mod irredundant;
pub mod legacy;
pub mod matrix;
pub mod minimize;
pub mod parallel;
pub mod pla;
pub mod reduce;
pub mod scratch;
pub mod simd;
pub mod space;
pub mod tautology;

pub use complement::{complement, sharp};
pub use cover::{Cover, CoverCost};
pub use ctl::{BestSoFar, CancelReason, Cancelled, RunCounters, RunCtl};
pub use cube::{supercube, Cube};
pub use exact::{all_primes, minimize_exact, ExactLimits};
pub use fault::{FaultKind, FaultPlan, FaultPlanError, FaultPoint, PIPELINE_STAGES};
pub use matrix::{CubeMatrix, Sig, SIG_EXACT_VARS};
pub use minimize::{minimize, minimize_with, minimize_with_ctl, MinimizeOptions, MinimizeStats};
pub use parallel::{ambient_jobs, resolve_jobs, with_ambient_jobs};
pub use scratch::{thread_stats as scratch_thread_stats, Scratch, ScratchStats};
pub use simd::{dispatch_tier, DispatchTier};
pub use space::{CubeSpace, VarKind};
pub use tautology::{
    cover_in_cover, covers_equivalent, cube_in_cover, tautology, verify_minimized,
};
