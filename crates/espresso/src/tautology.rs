//! Tautology checking via the unate recursive paradigm, and the containment
//! tests built on it.
//!
//! Tautology (`does this cover contain every minterm?`) is the work-horse
//! oracle of this crate: cube-in-cover containment, irredundancy, expansion
//! validity and reduction validity all reduce to it through the ESPRESSO
//! cofactor identity `c ⊆ F ⇔ tautology(F cofactored by c)`.

use crate::cover::Cover;
use crate::cube::{supercube, Cube};
use crate::space::CubeSpace;

/// Is the cover a tautology (covers every minterm of its space)?
///
/// Uses the unate recursive paradigm: quick decisions on trivial covers,
/// deletion of weakly-unate variables, and Shannon-style branching on the
/// most binate variable otherwise.
///
/// # Examples
///
/// ```
/// use espresso::{Cover, CubeSpace, tautology};
///
/// let mut f = Cover::empty(CubeSpace::binary(1));
/// f.push_parsed("10").unwrap();
/// f.push_parsed("01").unwrap();
/// assert!(tautology(&f)); // x + x' = 1
/// ```
pub fn tautology(f: &Cover) -> bool {
    taut_rec(f.space(), f.cubes().to_vec())
}

fn absorb_in_place(space: &CubeSpace, cubes: &mut Vec<Cube>) {
    cubes.retain(|c| !c.is_empty(space));
    let n = cubes.len();
    let mut keep = vec![true; n];
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !keep[j] {
                continue;
            }
            if cubes[i].is_subset_of(&cubes[j]) && (cubes[i] != cubes[j] || i > j) {
                keep[i] = false;
                break;
            }
        }
    }
    let mut idx = 0;
    cubes.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

fn taut_rec(space: &CubeSpace, mut cubes: Vec<Cube>) -> bool {
    loop {
        cubes.retain(|c| !c.is_empty(space));
        if cubes.iter().any(|c| c.is_full(space)) {
            return true;
        }
        if cubes.is_empty() {
            return false;
        }
        // Column check: the supercube of a tautology must be the universe.
        let sup = supercube(space, &cubes);
        if !sup.is_full(space) {
            return false;
        }

        // Weakly-unate variable deletion: if some part p of variable v is
        // admitted by no cube that is non-full in v, the minterms with v = p
        // can only be covered by the v-full cubes; since tautology of the
        // v = p cofactor (a subset of every other cofactor's cubes) implies
        // tautology of all cofactors, F is a tautology iff the v-full cubes
        // alone are.
        let mut reduced = false;
        for v in space.vars() {
            let mut non_full_union = Cube::zero(space);
            let mut any_non_full = false;
            for c in &cubes {
                if !c.var_is_full(space, v) {
                    any_non_full = true;
                    non_full_union = non_full_union.or(c);
                }
            }
            if !any_non_full {
                continue;
            }
            if !non_full_union.var_is_full(space, v) {
                cubes.retain(|c| c.var_is_full(space, v));
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        absorb_in_place(space, &mut cubes);
        if cubes.len() == 1 {
            return cubes[0].is_full(space);
        }

        // Select the most binate variable: the active variable with the most
        // non-full cubes (ties broken toward fewer parts to keep branching
        // narrow).
        let mut best: Option<(usize, usize, u32)> = None; // (var, count, parts)
        for v in space.vars() {
            let count = cubes.iter().filter(|c| !c.var_is_full(space, v)).count();
            if count == 0 {
                continue;
            }
            let parts = space.parts(v);
            let cand = (v, count, parts);
            best = Some(match best {
                None => cand,
                Some(b) => {
                    if count > b.1 || (count == b.1 && parts < b.2) {
                        cand
                    } else {
                        b
                    }
                }
            });
        }
        let (v, _, _) = match best {
            Some(b) => b,
            // All cubes full in all variables, but none was the universe:
            // impossible (a cube full in every variable *is* the universe).
            None => return true,
        };

        // Branch over every part of v: all cofactors must be tautologies.
        for p in 0..space.parts(v) {
            let mut branch: Vec<Cube> = Vec::with_capacity(cubes.len());
            for c in &cubes {
                if c.has_part(space, v, p) {
                    let mut cf = c.clone();
                    cf.set_var_full(space, v);
                    branch.push(cf);
                }
            }
            if !taut_rec(space, branch) {
                return false;
            }
        }
        return true;
    }
}

/// Exact cube-in-cover containment: is every minterm of `c` covered by `f`?
///
/// Computed as tautology of the cofactor of `f` with respect to `c`.
pub fn cube_in_cover(f: &Cover, c: &Cube) -> bool {
    if c.is_empty(f.space()) {
        return true;
    }
    let cf = f.cofactor(c);
    taut_rec(f.space(), cf.into_iter().collect())
}

/// Exact cover containment: `g ⊆ f`?
pub fn cover_in_cover(g: &Cover, f: &Cover) -> bool {
    g.iter().all(|c| cube_in_cover(f, c))
}

/// Functional equivalence of two covers (mutual containment).
pub fn covers_equivalent(f: &Cover, g: &Cover) -> bool {
    cover_in_cover(f, g) && cover_in_cover(g, f)
}

/// Verifies the ESPRESSO contract for a minimized cover `m` of an on-set
/// `f` with don't-care set `d`: `F ⊆ M ∪ D` (every on-minterm is either
/// implemented or was a don't care — the two sets may overlap, and the
/// don't care wins) and `M ⊆ F ∪ D` (nothing outside the specification is
/// asserted).
pub fn verify_minimized(m: &Cover, f: &Cover, d: &Cover) -> bool {
    let fd = f.union(d);
    let md = m.union(d);
    cover_in_cover(f, &md) && cover_in_cover(m, &fd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{CubeSpace, VarKind};

    fn cover(space: &CubeSpace, strs: &[&str]) -> Cover {
        let mut f = Cover::empty(space.clone());
        for s in strs {
            f.push_parsed(s).unwrap();
        }
        f
    }

    #[test]
    fn empty_cover_is_not_tautology() {
        let sp = CubeSpace::binary(2);
        assert!(!tautology(&Cover::empty(sp)));
    }

    #[test]
    fn universe_is_tautology() {
        let sp = CubeSpace::binary(3);
        assert!(tautology(&Cover::universe(sp)));
    }

    #[test]
    fn xor_cover_plus_complement_is_tautology() {
        let sp = CubeSpace::binary(2);
        // x ^ y  and its complement
        let f = cover(&sp, &["10 01", "01 10", "10 10", "01 01"]);
        assert!(tautology(&f));
        let g = cover(&sp, &["10 01", "01 10", "10 10"]);
        assert!(!tautology(&g));
    }

    #[test]
    fn multivalued_tautology() {
        let sp = CubeSpace::new(&[3, 2], &[VarKind::Multi, VarKind::Binary]);
        let f = cover(&sp, &["110 11", "001 10", "001 01"]);
        assert!(tautology(&f));
        let g = cover(&sp, &["110 11", "001 10"]);
        assert!(!tautology(&g));
    }

    #[test]
    fn weakly_unate_reduction_is_sound() {
        let sp = CubeSpace::binary(3);
        // Variable 0 appears only in positive phase among non-full cubes:
        // the cover is a tautology iff the v-full part is.
        let f = cover(&sp, &["10 11 11", "11 10 11", "11 01 11"]);
        assert!(tautology(&f));
        let g = cover(&sp, &["10 11 11", "11 10 11"]);
        assert!(!tautology(&g));
    }

    #[test]
    fn cube_in_cover_exact() {
        let sp = CubeSpace::binary(2);
        // f = x + y covers the cube xy' and the cube x'y, and the full cube
        // x+y itself is covered even though no single cube contains it...
        let f = cover(&sp, &["10 11", "11 10"]);
        let c = Cube::parse(&sp, "10 01").unwrap();
        assert!(cube_in_cover(&f, &c));
        // 11 11 (universe) is not covered (x'y' missing)
        assert!(!cube_in_cover(&f, &Cube::full(&sp)));
        // multi-cube containment: cube "11 10" covered jointly
        let d = Cube::parse(&sp, "11 10").unwrap();
        assert!(cube_in_cover(&f, &d));
    }

    #[test]
    fn equivalence_of_different_covers() {
        let sp = CubeSpace::binary(2);
        let f = cover(&sp, &["10 11", "11 10"]); // x + y
        let g = cover(&sp, &["10 01", "11 10"]); // xy' + y
        assert!(covers_equivalent(&f, &g));
    }

    #[test]
    fn verify_contract() {
        let sp = CubeSpace::binary(2);
        let f = cover(&sp, &["10 10"]);
        let d = cover(&sp, &["10 01"]);
        let m = cover(&sp, &["10 11"]); // expanded into the DC set
        assert!(verify_minimized(&m, &f, &d));
        let bad = cover(&sp, &["11 11"]);
        assert!(!verify_minimized(&bad, &f, &d));
    }
}
