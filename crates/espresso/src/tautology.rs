//! Tautology checking via the unate recursive paradigm, and the containment
//! tests built on it.
//!
//! Tautology (`does this cover contain every minterm?`) is the work-horse
//! oracle of this crate: cube-in-cover containment, irredundancy, expansion
//! validity and reduction validity all reduce to it through the ESPRESSO
//! cofactor identity `c ⊆ F ⇔ tautology(F cofactored by c)`.
//!
//! The recursion runs on flat [`CubeMatrix`] arenas drawn from the
//! per-thread [`Scratch`] pool: branch covers are written into reused
//! buffers instead of fresh `Vec<Cube>`s, so the descent performs no heap
//! allocation after warm-up. Results are bit-identical to the frozen
//! [`crate::legacy`] reference (pinned by differential tests).

use crate::containment::{absorb_matrix, any_row_contains};
use crate::cover::Cover;
use crate::cube::Cube;
use crate::matrix::{nonfull_counts, select_binate, CubeMatrix, Sig, SIG_EXACT_VARS};
use crate::parallel;
use crate::scratch::{with_scratch, Scratch};
use crate::space::CubeSpace;
use std::sync::atomic::{AtomicBool, Ordering};

/// Minimum rows before a branch fan-out is dispatched to the worker pool;
/// below this the per-dispatch synchronization dwarfs the branch work.
pub(crate) const PAR_MIN_ROWS: usize = 48;

/// Is the cover a tautology (covers every minterm of its space)?
///
/// Uses the unate recursive paradigm: quick decisions on trivial covers,
/// deletion of weakly-unate variables, and Shannon-style branching on the
/// most binate variable otherwise.
///
/// # Examples
///
/// ```
/// use espresso::{Cover, CubeSpace, tautology};
///
/// let mut f = Cover::empty(CubeSpace::binary(1));
/// f.push_parsed("10").unwrap();
/// f.push_parsed("01").unwrap();
/// assert!(tautology(&f)); // x + x' = 1
/// ```
pub fn tautology(f: &Cover) -> bool {
    with_scratch(|s| {
        let mut m = s.acquire(f.space());
        m.extend_cubes(f.space(), f.cubes());
        let r = taut_mat(f.space(), &mut m, s);
        s.release(m);
        r
    })
}

/// The unate recursive tautology check over an arena cover. `m` is consumed
/// as work space (its contents are destroyed).
pub(crate) fn taut_mat(space: &CubeSpace, m: &mut CubeMatrix, s: &mut Scratch) -> bool {
    loop {
        m.drop_degenerate();
        if m.any_row_full(space) {
            return true;
        }
        if m.is_empty() {
            return false;
        }
        // Column check: the supercube of a tautology must be the universe.
        // One strided fold over the flat arena (a single flat OR fold for
        // stride-1 spaces), no per-row indexing.
        {
            let mut col = s.acquire_words();
            col.resize(space.words(), 0);
            m.fold_or_into(&mut col);
            let universe = col.as_slice() == space.full_words();
            s.release_words(col);
            if !universe {
                return false;
            }
        }

        // Weakly-unate variable deletion: if some part p of variable v is
        // admitted by no cube that is non-full in v, the minterms with v = p
        // can only be covered by the v-full cubes; since tautology of the
        // v = p cofactor (a subset of every other cofactor's cubes) implies
        // tautology of all cofactors, F is a tautology iff the v-full cubes
        // alone are.
        //
        // Inside the exact signature window the per-variable statistics come
        // from one fused pass: each row contributes only to the variables
        // whose `nonfull` bit is set, and the admitted-part union of those
        // rows accumulates per variable, so the pass is O(rows × nonfull
        // vars) with at most one word read per contribution.
        let nv = space.num_vars();
        let mut reduced = false;
        if nv <= SIG_EXACT_VARS {
            let mut counts = s.acquire_counts();
            counts.resize(nv, 0);
            let mut union1 = s.acquire_words();
            union1.resize(nv, 0);
            for i in 0..m.len() {
                let mut nf = m.sig(i).nonfull;
                if nf == 0 {
                    continue;
                }
                let row = m.row(i);
                while nf != 0 {
                    let v = nf.trailing_zeros() as usize;
                    nf &= nf - 1;
                    counts[v] += 1;
                    if let Some((k, mask)) = space.single_word_field(v) {
                        union1[v] |= row[k] & mask;
                    }
                }
            }
            for v in space.vars() {
                if counts[v] == 0 {
                    continue;
                }
                let union_full = match space.single_word_field(v) {
                    Some((_, mask)) => union1[v] == mask,
                    None => multiword_union_full(space, m, v),
                };
                if !union_full {
                    m.retain_var_full(space, v);
                    reduced = true;
                    break;
                }
            }
            s.release_words(union1);
            s.release_counts(counts);
        } else {
            // Beyond the window the saturated top bit is only an over-
            // approximation, so fall back to exact per-variable scans.
            for v in space.vars() {
                let any_non_full = (0..m.len()).any(|i| !m.row_var_is_full(space, i, v));
                if !any_non_full {
                    continue;
                }
                let union_full = (0..space.parts(v)).all(|p| {
                    (0..m.len())
                        .any(|i| !m.row_var_is_full(space, i, v) && m.row_has_part(space, i, v, p))
                });
                if !union_full {
                    m.retain_var_full(space, v);
                    reduced = true;
                    break;
                }
            }
        }
        if reduced {
            continue;
        }

        let mut keep = s.acquire_flags();
        absorb_matrix(m, &mut keep);
        s.release_flags(keep);
        if m.len() == 1 {
            return m.row_is_full(space, 0);
        }

        // Select the most binate variable (absorption changed the rows, so
        // the counts are retaken — from signatures alone).
        let mut counts = s.acquire_counts();
        nonfull_counts(space, m, &mut counts);
        let best = select_binate(space, &counts);
        s.release_counts(counts);
        let v = match best {
            Some(v) => v,
            // All cubes full in all variables, but none was the universe:
            // impossible (a cube full in every variable *is* the universe).
            None => return true,
        };

        // Branch over every part of v: all cofactors must be tautologies.
        // The conjunction is order-free, so the branches may race across the
        // worker pool; the failed flag only skips work whose outcome cannot
        // change the (already false) answer.
        let parts = space.parts(v);
        let jobs = parallel::ambient_jobs();
        if jobs > 1 && parts >= 2 && m.len() >= PAR_MIN_ROWS {
            let mr: &CubeMatrix = m;
            let failed = AtomicBool::new(false);
            parallel::run_tasks(jobs, parts as usize, s, &|p, ts| {
                if failed.load(Ordering::Relaxed) {
                    return;
                }
                let mut branch = ts.acquire(space);
                for i in 0..mr.len() {
                    if mr.row_has_part(space, i, v, p as u32) {
                        branch.push_var_full_from(space, mr.row(i), v, mr.sig(i));
                    }
                }
                if !taut_mat(space, &mut branch, ts) {
                    failed.store(true, Ordering::Relaxed);
                }
                ts.release(branch);
            });
            return !failed.load(Ordering::Relaxed);
        }
        for p in 0..parts {
            let mut branch = s.acquire(space);
            for i in 0..m.len() {
                if m.row_has_part(space, i, v, p) {
                    branch.push_var_full_from(space, m.row(i), v, m.sig(i));
                }
            }
            let ok = taut_mat(space, &mut branch, s);
            s.release(branch);
            if !ok {
                return false;
            }
        }
        return true;
    }
}

/// Exact union-fullness check for a variable spanning multiple words (rare;
/// only reachable for parts > 64 fields).
fn multiword_union_full(space: &CubeSpace, m: &CubeMatrix, v: usize) -> bool {
    let (lo, hi) = space.var_span(v);
    let mask = space.mask(v);
    for (k, &mk) in mask.iter().enumerate().take(hi + 1).skip(lo) {
        let mut acc = 0u64;
        for i in 0..m.len() {
            if !m.row_var_is_full(space, i, v) {
                acc |= m.row(i)[k];
            }
        }
        if acc & mk != mk {
            return false;
        }
    }
    true
}

/// Exact containment of the cube with words `c` (signature `sig_c`) in the
/// cover held by matrix `m`: the fast single-cube accept, then tautology of
/// the cofactor written into a scratch matrix. This is the oracle behind the
/// EXPAND/REDUCE/IRREDUNDANT inner loops.
pub(crate) fn cube_in_matrix(
    space: &CubeSpace,
    m: &CubeMatrix,
    c: &[u64],
    sig_c: Sig,
    s: &mut Scratch,
) -> bool {
    if sig_c.empty {
        return true;
    }
    // Sufficient fast path: some single row contains c outright.
    if any_row_contains(m, c, sig_c) {
        return true;
    }
    let mut cf = s.acquire(space);
    for i in 0..m.len() {
        cf.push_cofactor(space, m.row(i), c);
    }
    let r = taut_mat(space, &mut cf, s);
    s.release(cf);
    r
}

/// Exact cube-in-cover containment: is every minterm of `c` covered by `f`?
///
/// Computed as tautology of the cofactor of `f` with respect to `c`.
pub fn cube_in_cover(f: &Cover, c: &Cube) -> bool {
    let space = f.space();
    if c.is_empty(space) {
        return true;
    }
    with_scratch(|s| {
        // Sufficient fast path: some single cube contains c outright.
        if f.iter().any(|d| c.is_subset_of(d)) {
            return true;
        }
        let mut cf = s.acquire(space);
        for d in f.iter() {
            cf.push_cofactor(space, d.words(), c.words());
        }
        let r = taut_mat(space, &mut cf, s);
        s.release(cf);
        r
    })
}

/// Exact cover containment: `g ⊆ f`?
pub fn cover_in_cover(g: &Cover, f: &Cover) -> bool {
    g.iter().all(|c| cube_in_cover(f, c))
}

/// Functional equivalence of two covers (mutual containment).
pub fn covers_equivalent(f: &Cover, g: &Cover) -> bool {
    cover_in_cover(f, g) && cover_in_cover(g, f)
}

/// Verifies the ESPRESSO contract for a minimized cover `m` of an on-set
/// `f` with don't-care set `d`: `F ⊆ M ∪ D` (every on-minterm is either
/// implemented or was a don't care — the two sets may overlap, and the
/// don't care wins) and `M ⊆ F ∪ D` (nothing outside the specification is
/// asserted).
pub fn verify_minimized(m: &Cover, f: &Cover, d: &Cover) -> bool {
    let fd = f.union(d);
    let md = m.union(d);
    cover_in_cover(f, &md) && cover_in_cover(m, &fd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{CubeSpace, VarKind};

    fn cover(space: &CubeSpace, strs: &[&str]) -> Cover {
        let mut f = Cover::empty(space.clone());
        for s in strs {
            f.push_parsed(s).unwrap();
        }
        f
    }

    #[test]
    fn empty_cover_is_not_tautology() {
        let sp = CubeSpace::binary(2);
        assert!(!tautology(&Cover::empty(sp)));
    }

    #[test]
    fn universe_is_tautology() {
        let sp = CubeSpace::binary(3);
        assert!(tautology(&Cover::universe(sp)));
    }

    #[test]
    fn xor_cover_plus_complement_is_tautology() {
        let sp = CubeSpace::binary(2);
        // x ^ y  and its complement
        let f = cover(&sp, &["10 01", "01 10", "10 10", "01 01"]);
        assert!(tautology(&f));
        let g = cover(&sp, &["10 01", "01 10", "10 10"]);
        assert!(!tautology(&g));
    }

    #[test]
    fn multivalued_tautology() {
        let sp = CubeSpace::new(&[3, 2], &[VarKind::Multi, VarKind::Binary]);
        let f = cover(&sp, &["110 11", "001 10", "001 01"]);
        assert!(tautology(&f));
        let g = cover(&sp, &["110 11", "001 10"]);
        assert!(!tautology(&g));
    }

    #[test]
    fn weakly_unate_reduction_is_sound() {
        let sp = CubeSpace::binary(3);
        // Variable 0 appears only in positive phase among non-full cubes:
        // the cover is a tautology iff the v-full part is.
        let f = cover(&sp, &["10 11 11", "11 10 11", "11 01 11"]);
        assert!(tautology(&f));
        let g = cover(&sp, &["10 11 11", "11 10 11"]);
        assert!(!tautology(&g));
    }

    #[test]
    fn cube_in_cover_exact() {
        let sp = CubeSpace::binary(2);
        // f = x + y covers the cube xy' and the cube x'y, and the full cube
        // x+y itself is covered even though no single cube contains it...
        let f = cover(&sp, &["10 11", "11 10"]);
        let c = Cube::parse(&sp, "10 01").unwrap();
        assert!(cube_in_cover(&f, &c));
        // 11 11 (universe) is not covered (x'y' missing)
        assert!(!cube_in_cover(&f, &Cube::full(&sp)));
        // multi-cube containment: cube "11 10" covered jointly
        let d = Cube::parse(&sp, "11 10").unwrap();
        assert!(cube_in_cover(&f, &d));
    }

    #[test]
    fn equivalence_of_different_covers() {
        let sp = CubeSpace::binary(2);
        let f = cover(&sp, &["10 11", "11 10"]); // x + y
        let g = cover(&sp, &["10 01", "11 10"]); // xy' + y
        assert!(covers_equivalent(&f, &g));
    }

    #[test]
    fn verify_contract() {
        let sp = CubeSpace::binary(2);
        let f = cover(&sp, &["10 10"]);
        let d = cover(&sp, &["10 01"]);
        let m = cover(&sp, &["10 11"]); // expanded into the DC set
        assert!(verify_minimized(&m, &f, &d));
        let bad = cover(&sp, &["11 11"]);
        assert!(!verify_minimized(&bad, &f, &d));
    }

    #[test]
    fn scratch_pool_stops_allocating_after_warmup() {
        use crate::scratch::thread_stats;
        let sp = CubeSpace::binary(4);
        let f = cover(
            &sp,
            &[
                "10 11 11 11",
                "01 10 11 11",
                "01 01 10 11",
                "01 01 01 10",
                "01 01 01 01",
            ],
        );
        tautology(&f); // warm-up
        let before = thread_stats();
        for _ in 0..16 {
            assert!(tautology(&f));
        }
        let delta = thread_stats().delta_from(&before);
        assert!(delta.acquires > 0, "the kernel used the pool");
        assert_eq!(
            delta.fresh_allocs, 0,
            "steady-state tautology must not allocate new matrices"
        );
    }
}
