//! EXPAND: grow each cube of a cover into a prime implicant.
//!
//! A part may be raised in a cube exactly when the raised cube is still
//! contained in `ON ∪ DC`. Because the current cover `F` together with the
//! don't-care cover `D` denotes exactly `ON ∪ DC` throughout the ESPRESSO
//! iteration, the validity oracle is the exact containment test
//! [`cube_in_cover`]`(F ∪ D, raised)`.
//!
//! Raising is monotone (a raise rejected once can never become valid as the
//! cube grows), so a single pass over the candidate parts per cube yields a
//! prime.
//!
//! The oracle lives in a scratch [`CubeMatrix`](crate::matrix::CubeMatrix)
//! rebuilt in place per cube (no per-candidate `Cover` clones), and each
//! candidate raise is tested through the signature-pruned, arena-backed
//! [`cube_in_matrix`] oracle.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::matrix::Sig;
use crate::scratch::with_scratch;
use crate::tautology::{cube_in_cover, cube_in_matrix};

/// Expands every cube of `f` against the don't-care cover `d` into a prime,
/// removing cubes that become covered by an expanded one.
///
/// Cubes are processed smallest-first (they benefit most), and parts are
/// tried in descending column count over `f` (raising toward other cubes
/// maximizes the chance of covering them).
pub fn expand(f: &mut Cover, d: &Cover) {
    let space = f.space().clone();
    f.absorb();
    let n = f.len();
    if n == 0 {
        return;
    }

    // Column counts: how many cubes of f admit each part. One word pass per
    // cube, iterating set bits (a part's global bit index is its word slot).
    let total_bits = space.total_bits() as usize;
    let mut col = vec![0u32; total_bits];
    for c in f.iter() {
        for (k, &w) in c.words().iter().enumerate() {
            let mut w = w;
            while w != 0 {
                col[k * 64 + w.trailing_zeros() as usize] += 1;
                w &= w - 1;
            }
        }
    }

    // Process order: ascending size.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| f.cubes()[i].count_ones());

    let mut covered = vec![false; n];
    with_scratch(|s| {
        let mut t_words: Vec<u64> = Vec::with_capacity(space.words());
        for &i in &order {
            if covered[i] {
                continue;
            }
            let mut c = f.cubes()[i].clone();

            // Oracle: the non-covered cubes of f (including i, in its current
            // committed form — the denotation is exactly ON ∪ DC) plus D. A
            // candidate t strictly contains the original cube i, so keeping
            // row i in the oracle cannot spuriously accept a raise on the
            // single-cube fast path.
            let mut oracle = s.acquire(&space);
            for (j, other) in f.iter().enumerate() {
                if !covered[j] {
                    oracle.push_cube(&space, other);
                }
            }
            oracle.extend_cubes(&space, d.iter());

            // Candidate parts: currently absent from c, in descending column
            // count.
            let mut cands: Vec<(usize, u32)> = Vec::new();
            for v in space.vars() {
                for p in 0..space.parts(v) {
                    if !c.has_part(&space, v, p) {
                        cands.push((v, p));
                    }
                }
            }
            cands.sort_by_key(|&(v, p)| std::cmp::Reverse(col[space.bit(v, p) as usize]));

            // The cube's signature is carried across raises and each
            // candidate's derived incrementally — no per-candidate Sig::of.
            let mut sig_c = Sig::of(&space, c.words());
            for (v, p) in cands {
                t_words.clear();
                t_words.extend_from_slice(c.words());
                let b = space.bit(v, p) as usize;
                t_words[b / 64] |= 1u64 << (b % 64);
                let sig = sig_c.with_part_raised(&space, &t_words, v, b);
                if cube_in_matrix(&space, &oracle, &t_words, sig, s) {
                    c.set_part(&space, v, p);
                    sig_c = sig;
                }
            }
            s.release(oracle);

            // Commit and mark covered cubes.
            f.cubes_mut()[i] = c.clone();
            for (j, cov) in covered.iter_mut().enumerate() {
                if j != i && !*cov && f.cubes()[j].is_subset_of(&c) {
                    *cov = true;
                }
            }
        }
    });

    let mut idx = 0;
    f.cubes_mut().retain(|_| {
        let k = !covered[idx];
        idx += 1;
        k
    });
}

/// Is `c` a prime implicant of the function denoted by `fd = F ∪ D`
/// (no single part can be raised while staying inside `fd`)?
pub fn is_prime(fd: &Cover, c: &Cube) -> bool {
    let space = fd.space();
    for v in space.vars() {
        for p in 0..space.parts(v) {
            if !c.has_part(space, v, p) {
                let mut t = c.clone();
                t.set_part(space, v, p);
                if cube_in_cover(fd, &t) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::CubeSpace;
    use crate::tautology::verify_minimized;

    fn cover(space: &CubeSpace, strs: &[&str]) -> Cover {
        let mut f = Cover::empty(space.clone());
        for s in strs {
            f.push_parsed(s).unwrap();
        }
        f
    }

    #[test]
    fn expand_merges_adjacent_minterms() {
        let sp = CubeSpace::binary_with_output(2, 1);
        // f = x'y' + x'y  should expand to x'
        let mut f = cover(&sp, &["01 01 1", "01 10 1"]);
        let orig = f.clone();
        let d = Cover::empty(sp.clone());
        expand(&mut f, &d);
        assert_eq!(f.len(), 1);
        assert_eq!(f.cubes()[0].display(&sp).to_string(), "01 11 1");
        assert!(verify_minimized(&f, &orig, &d));
    }

    #[test]
    fn expand_uses_dont_cares() {
        let sp = CubeSpace::binary_with_output(2, 1);
        let mut f = cover(&sp, &["10 10 1"]); // xy
        let orig = f.clone();
        let d = cover(&sp, &["10 01 1", "01 10 1"]); // xy' and x'y are DC
        expand(&mut f, &d);
        assert_eq!(f.len(), 1);
        // The prime may absorb either DC direction; it must be a prime and
        // stay within ON ∪ DC.
        assert!(verify_minimized(&f, &orig, &d));
        let fd = orig.union(&d);
        assert!(is_prime(&fd, &f.cubes()[0]));
        assert!(f.cubes()[0].count_ones() > orig.cubes()[0].count_ones());
    }

    #[test]
    fn expand_respects_off_set() {
        let sp = CubeSpace::binary_with_output(2, 1);
        // xor: on = xy' + x'y, off = xy + x'y'. Nothing can expand.
        let mut f = cover(&sp, &["10 01 1", "01 10 1"]);
        let orig = f.clone();
        let d = Cover::empty(sp.clone());
        expand(&mut f, &d);
        assert_eq!(f.len(), 2);
        assert!(verify_minimized(&f, &orig, &d));
    }

    #[test]
    fn expand_multioutput_sharing() {
        let sp = CubeSpace::binary_with_output(2, 2);
        // Same product needed by both outputs: xy on f0, xy on f1.
        let mut f = cover(&sp, &["10 10 10", "10 10 01"]);
        let d = Cover::empty(sp.clone());
        expand(&mut f, &d);
        assert_eq!(f.len(), 1);
        assert_eq!(f.cubes()[0].display(&sp).to_string(), "10 10 11");
    }

    #[test]
    fn expanded_cubes_are_prime() {
        let sp = CubeSpace::binary_with_output(3, 1);
        let mut f = cover(
            &sp,
            &["10 10 10 1", "10 10 01 1", "01 10 10 1", "10 01 10 1"],
        );
        let orig = f.clone();
        let d = Cover::empty(sp.clone());
        expand(&mut f, &d);
        let fd = orig.union(&d);
        for c in f.iter() {
            assert!(is_prime(&fd, c));
        }
        assert!(verify_minimized(&f, &orig, &d));
    }

    #[test]
    fn expand_matches_legacy() {
        use crate::legacy;
        let sp = CubeSpace::binary_with_output(3, 2);
        let cases: &[(&[&str], &[&str])] = &[
            (
                &["10 10 10 10", "10 10 01 10", "01 10 10 01"],
                &["10 01 11 11"],
            ),
            (&["11 10 11 10", "10 11 10 10", "11 11 01 01"], &[]),
        ];
        for (fs, ds) in cases {
            let mut ours = cover(&sp, fs);
            let mut theirs = ours.clone();
            let d = cover(&sp, ds);
            expand(&mut ours, &d);
            legacy::expand(&mut theirs, &d);
            assert_eq!(ours, theirs, "case {fs:?} / {ds:?}");
        }
    }
}
