//! Differential tests: the arena-backed kernels must produce results
//! bit-identical to the frozen pre-arena implementations in
//! `espresso::legacy`, across randomized covers in mixed binary /
//! multiple-valued spaces.
//!
//! The RNG is the repo's canonical SplitMix64 (`fsm::rng`, no external
//! crates, reproducible offline) — the same stream every seeded component
//! draws from.

use espresso::legacy;
use espresso::{
    complement, containment, cube_in_cover, minimize_with, tautology, Cover, Cube, CubeSpace,
    MinimizeOptions, VarKind,
};
use fsm::SplitMix64;

/// The space zoo: plain binary, binary+output, and mixed multi-valued shapes
/// (NOVA's symbolic covers are exactly the latter).
fn spaces() -> Vec<CubeSpace> {
    vec![
        CubeSpace::binary(3),
        CubeSpace::binary(5),
        CubeSpace::binary_with_output(3, 2),
        CubeSpace::binary_with_output(4, 3),
        CubeSpace::new(
            &[4, 2, 2],
            &[VarKind::Multi, VarKind::Binary, VarKind::Binary],
        ),
        CubeSpace::new(
            &[5, 3, 2, 2],
            &[
                VarKind::Multi,
                VarKind::Multi,
                VarKind::Binary,
                VarKind::Output,
            ],
        ),
    ]
}

/// A random cube: each variable keeps a random non-trivial subset of parts,
/// with occasional full fields and (rarely) an empty field to exercise the
/// degenerate paths.
fn random_cube(rng: &mut SplitMix64, space: &CubeSpace) -> Cube {
    let mut c = Cube::full(space);
    for v in space.vars() {
        let parts = space.parts(v);
        match rng.below_u64(8) {
            0 | 1 => {} // keep full
            2 if parts > 1 => {
                // empty field (degenerate cube)
                for p in 0..parts {
                    c.clear_part(space, v, p);
                }
            }
            _ => {
                // random proper subset, biased toward keeping parts
                let mut kept = 0;
                for p in 0..parts {
                    if rng.below_u64(3) == 0 {
                        c.clear_part(space, v, p);
                    } else {
                        kept += 1;
                    }
                }
                if kept == 0 {
                    c.set_part(space, v, (rng.below_u64(parts as u64)) as u32);
                }
            }
        }
    }
    c
}

fn random_cover(rng: &mut SplitMix64, space: &CubeSpace, max_cubes: u64) -> Cover {
    let n = rng.below_u64(max_cubes + 1);
    let cubes = (0..n).map(|_| random_cube(rng, space)).collect();
    Cover::from_cubes(space.clone(), cubes)
}

#[test]
fn tautology_matches_legacy_on_random_covers() {
    let mut rng = SplitMix64::new(0x7a75_7431);
    for space in spaces() {
        for _ in 0..60 {
            let f = random_cover(&mut rng, &space, 10);
            assert_eq!(
                tautology(&f),
                legacy::tautology(&f),
                "tautology diverged on {f:?}"
            );
        }
    }
}

#[test]
fn complement_matches_legacy_exactly() {
    let mut rng = SplitMix64::new(0x00c0_4911);
    for space in spaces() {
        for _ in 0..40 {
            let f = random_cover(&mut rng, &space, 8);
            let ours = complement(&f);
            let theirs = legacy::complement(&f);
            // Cube-list identity, not mere equivalence: the arena recursion
            // must retrace the legacy recursion exactly.
            assert_eq!(ours.cubes(), theirs.cubes(), "complement diverged on {f:?}");
        }
    }
}

#[test]
fn cube_in_cover_matches_legacy() {
    let mut rng = SplitMix64::new(0x0051_b5e7);
    for space in spaces() {
        for _ in 0..60 {
            let f = random_cover(&mut rng, &space, 8);
            let c = random_cube(&mut rng, &space);
            assert_eq!(
                cube_in_cover(&f, &c),
                legacy::cube_in_cover(&f, &c),
                "cube_in_cover diverged on {f:?} / {c:?}"
            );
        }
    }
}

#[test]
fn absorb_matches_legacy() {
    let mut rng = SplitMix64::new(0x00ab_504b);
    for space in spaces() {
        for _ in 0..60 {
            let f = random_cover(&mut rng, &space, 12);
            let mut ours = f.cubes().to_vec();
            let mut theirs = f.cubes().to_vec();
            containment::absorb_cubes(&space, &mut ours);
            legacy::absorb_in_place(&space, &mut theirs);
            assert_eq!(ours, theirs, "absorb diverged on {f:?}");
        }
    }
}

#[test]
fn expand_reduce_irredundant_match_legacy() {
    let mut rng = SplitMix64::new(0x00e7_8a9d);
    for space in spaces() {
        for _ in 0..25 {
            let f = random_cover(&mut rng, &space, 8);
            let d = random_cover(&mut rng, &space, 3);

            let mut a = f.clone();
            let mut b = f.clone();
            espresso::expand::expand(&mut a, &d);
            legacy::expand(&mut b, &d);
            assert_eq!(a, b, "expand diverged on {f:?} / {d:?}");

            let mut a = f.clone();
            let mut b = f.clone();
            espresso::reduce::reduce(&mut a, &d);
            legacy::reduce(&mut b, &d);
            assert_eq!(a, b, "reduce diverged on {f:?} / {d:?}");

            let mut a = f.clone();
            let mut b = f.clone();
            espresso::irredundant::irredundant(&mut a, &d);
            legacy::irredundant(&mut b, &d);
            assert_eq!(a, b, "irredundant diverged on {f:?} / {d:?}");
        }
    }
}

#[test]
fn full_minimize_matches_legacy_cover_and_cost() {
    let mut rng = SplitMix64::new(0x3141_5926);
    let opts = MinimizeOptions {
        verify: true,
        ..MinimizeOptions::default()
    };
    for space in spaces() {
        for _ in 0..12 {
            let f = random_cover(&mut rng, &space, 7);
            let d = random_cover(&mut rng, &space, 3);
            let (ours, our_stats) = minimize_with(&f, &d, opts);
            let (theirs, their_stats) = legacy::minimize_with(&f, &d, opts);
            assert_eq!(ours, theirs, "minimize diverged on {f:?} / {d:?}");
            assert_eq!(ours.cost(), theirs.cost());
            assert_eq!(our_stats, their_stats);
        }
    }
}

/// A mostly-full cube: non-full in at most `loose` variables. Wide spaces
/// need this bias — a cube that is loose everywhere makes the legacy
/// reference complement intractable at hundreds of variables.
fn mostly_full_cube(rng: &mut SplitMix64, space: &CubeSpace, loose: u64) -> Cube {
    let mut c = Cube::full(space);
    for _ in 0..rng.below_u64(loose + 1) {
        let v = rng.below_u64(space.num_vars() as u64) as usize;
        c.clear_part(space, v, rng.below_u64(space.parts(v) as u64) as u32);
    }
    c
}

/// The universe split on one variable: two cubes, each full everywhere
/// except one complementary half of `v` — their union is a tautology no
/// matter how wide the space is.
fn universe_split(space: &CubeSpace, v: usize) -> Vec<Cube> {
    let mut a = Cube::full(space);
    a.clear_part(space, v, 0);
    let mut b = Cube::full(space);
    b.clear_part(space, v, 1);
    vec![a, b]
}

#[test]
fn kernels_match_legacy_across_chunk_boundary_widths() {
    // Strides 1..=9 cross every portable-chunk (4-word) and AVX2-lane
    // boundary, plus the WIDE_MIN_WORDS dispatch threshold; 32 binary
    // variables occupy exactly one 64-bit word.
    for w in 1..=9usize {
        let space = CubeSpace::binary(32 * w);
        assert_eq!(space.words(), w, "stride setup for width {w}");
        let mut rng = SplitMix64::new(0x51_3d00 + w as u64);
        for round in 0..10 {
            let n = 2 + rng.below_u64(8) as usize;
            let mut cubes: Vec<Cube> = (0..n)
                .map(|_| mostly_full_cube(&mut rng, &space, 5))
                .collect();
            if round % 2 == 0 {
                // Make the true-tautology path reachable at every width.
                cubes.extend(universe_split(
                    &space,
                    rng.below_u64(space.num_vars() as u64) as usize,
                ));
            }
            let f = Cover::from_cubes(space.clone(), cubes);
            assert_eq!(
                tautology(&f),
                legacy::tautology(&f),
                "tautology diverged at stride {w}, round {round}"
            );
            let c = mostly_full_cube(&mut rng, &space, 5);
            assert_eq!(
                cube_in_cover(&f, &c),
                legacy::cube_in_cover(&f, &c),
                "cube_in_cover diverged at stride {w}, round {round}"
            );
            let mut ours = f.cubes().to_vec();
            let mut theirs = f.cubes().to_vec();
            containment::absorb_cubes(&space, &mut ours);
            legacy::absorb_in_place(&space, &mut theirs);
            assert_eq!(ours, theirs, "absorb diverged at stride {w}, round {round}");
            if round < 3 {
                let g = Cover::from_cubes(space.clone(), f.cubes()[..n.min(3)].to_vec());
                assert_eq!(
                    complement(&g).cubes(),
                    legacy::complement(&g).cubes(),
                    "complement diverged at stride {w}, round {round}"
                );
            }
        }
    }
}

#[test]
fn saturated_signature_window_stays_exact_beyond_127_vars() {
    // 130 binary variables exceed SIG_EXACT_VARS: high variables share the
    // saturated nonfull bit and every sig-driven fast path must fall back to
    // word scans without changing any answer.
    let space = CubeSpace::binary(130);
    assert!(space.num_vars() > espresso::SIG_EXACT_VARS);
    let mut rng = SplitMix64::new(0x5a7_0b17);
    for round in 0..8 {
        let mut cubes: Vec<Cube> = (0..(2 + rng.below_u64(6)))
            .map(|_| mostly_full_cube(&mut rng, &space, 4))
            .collect();
        if round % 2 == 0 {
            // Split on a variable above the saturation bit, so the exact
            // answer depends on exactly the aliased range.
            cubes.extend(universe_split(&space, 127 + round % 3));
        }
        let f = Cover::from_cubes(space.clone(), cubes);
        assert_eq!(tautology(&f), legacy::tautology(&f), "round {round}");
        let c = mostly_full_cube(&mut rng, &space, 4);
        assert_eq!(
            cube_in_cover(&f, &c),
            legacy::cube_in_cover(&f, &c),
            "round {round}"
        );
        let mut ours = f.cubes().to_vec();
        let mut theirs = f.cubes().to_vec();
        containment::absorb_cubes(&space, &mut ours);
        legacy::absorb_in_place(&space, &mut theirs);
        assert_eq!(ours, theirs, "round {round}");
    }
}

#[test]
fn espresso_jobs_results_are_byte_identical() {
    // The PR 4 embed-jobs divergence gate, mirrored for --espresso-jobs:
    // any worker count must produce byte-identical covers, both at the
    // kernel level (ambient jobs) and through the MinimizeOptions knob.
    let mut rng = SplitMix64::new(0x9a11_e701);
    let space = CubeSpace::binary_with_output(6, 3);
    for _ in 0..5 {
        let f = random_cover(&mut rng, &space, 80);
        let seq_c = complement(&f);
        let par_c = espresso::with_ambient_jobs(4, || complement(&f));
        assert_eq!(seq_c.cubes(), par_c.cubes(), "complement diverged on {f:?}");
        let seq_t = tautology(&f);
        let par_t = espresso::with_ambient_jobs(4, || tautology(&f));
        assert_eq!(seq_t, par_t, "tautology diverged on {f:?}");
    }
    for _ in 0..3 {
        let f = random_cover(&mut rng, &space, 40);
        let d = random_cover(&mut rng, &space, 8);
        let one = minimize_with(
            &f,
            &d,
            MinimizeOptions {
                jobs: 1,
                verify: true,
                ..MinimizeOptions::default()
            },
        );
        let four = minimize_with(
            &f,
            &d,
            MinimizeOptions {
                jobs: 4,
                verify: true,
                ..MinimizeOptions::default()
            },
        );
        assert_eq!(one.0.cubes(), four.0.cubes(), "minimize diverged on {f:?}");
        assert_eq!(one.1, four.1, "stats diverged on {f:?}");
    }
}

#[test]
fn minimize_still_satisfies_contract_on_larger_random_covers() {
    // Not a differential check (legacy would be slow here): property-test the
    // ESPRESSO contract itself on bigger instances that stress the arena
    // recursion depth and the scratch pool.
    let mut rng = SplitMix64::new(0xdead_bee5);
    let space = CubeSpace::binary_with_output(6, 3);
    for _ in 0..8 {
        let f = random_cover(&mut rng, &space, 24);
        let d = random_cover(&mut rng, &space, 6);
        let (m, _) = minimize_with(
            &f,
            &d,
            MinimizeOptions {
                verify: true, // panics internally on contract violation
                ..MinimizeOptions::default()
            },
        );
        assert!(m.len() <= f.len() + d.len());
    }
}
