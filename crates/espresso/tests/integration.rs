//! Integration tests of the espresso crate: PLA round trips through
//! minimization, multi-valued covers, and cross-operator identities.

use espresso::complement::{complement_cube, sharp_cube};
use espresso::pla::{parse_pla, write_pla};
use espresso::{
    complement, covers_equivalent, cube_in_cover, minimize, sharp, tautology, Cover, Cube,
    CubeSpace, VarKind,
};

#[test]
fn pla_minimize_roundtrip() {
    let text = "\
.i 4
.o 3
0000 101
0001 101
0010 101
0011 101
01-- 010
10-- 010
11-- 111
.e
";
    let pla = parse_pla(text).unwrap();
    let m = minimize(&pla.on, &pla.dc);
    assert!(covers_equivalent(&m, &pla.on));
    // The first four rows collapse to 00--.
    assert!(m.len() <= 4);
    let rendered = write_pla(&m, &pla.dc);
    let back = parse_pla(&rendered).unwrap();
    assert!(covers_equivalent(&back.on, &pla.on));
}

#[test]
fn seven_segment_decoder_minimizes() {
    // BCD to 7-segment (segment a): on for digits 0,2,3,5,6,7,8,9.
    let space = CubeSpace::binary_with_output(4, 1);
    let mut on = Cover::empty(space.clone());
    let mut dc = Cover::empty(space.clone());
    for digit in 0..10u32 {
        let seg_a = [0, 2, 3, 5, 6, 7, 8, 9].contains(&digit);
        if seg_a {
            let mut c = Cube::zero(&space);
            for b in 0..4 {
                c.set_part(&space, b, digit >> b & 1);
            }
            c.set_part(&space, 4, 0);
            on.push(c);
        }
    }
    // Codes 10..15 never occur.
    for digit in 10..16u32 {
        let mut c = Cube::zero(&space);
        for b in 0..4 {
            c.set_part(&space, b, digit >> b & 1);
        }
        c.set_part(&space, 4, 0);
        dc.push(c);
    }
    let m = minimize(&on, &dc);
    // Classic result: segment a needs few terms once the BCD DC set is used.
    assert!(m.len() <= 4, "got {} cubes:\n{m:?}", m.len());
    assert!(espresso::verify_minimized(&m, &on, &dc));
}

#[test]
fn mv_cover_with_three_variables() {
    // f(v, w) over a 5-valued v and 3-valued w (output variable).
    let space = CubeSpace::new(&[5, 3], &[VarKind::Multi, VarKind::Output]);
    let mut f = Cover::empty(space.clone());
    f.push_parsed("10000 100").unwrap();
    f.push_parsed("01000 100").unwrap();
    f.push_parsed("00100 100").unwrap();
    f.push_parsed("00011 010").unwrap();
    let m = minimize(&f, &Cover::empty(space.clone()));
    assert_eq!(m.len(), 2, "{m:?}");
    assert!(m
        .iter()
        .any(|c| c.var_count(&space, 0) == 3 && c.has_part(&space, 1, 0)));
}

#[test]
fn sharp_and_complement_agree_on_cubes() {
    let space = CubeSpace::binary(4);
    let a = Cube::parse(&space, "11 10 11 01").unwrap();
    let b = Cube::parse(&space, "10 10 11 11").unwrap();
    let pieces = sharp_cube(&space, &a, &b);
    // a # b == a ∩ complement(b)
    let comp_b = Cover::from_cubes(space.clone(), complement_cube(&space, &b));
    let a_cover = Cover::from_cubes(space.clone(), vec![a.clone()]);
    let expected = a_cover.intersection(&comp_b);
    let got = Cover::from_cubes(space.clone(), pieces);
    assert!(covers_equivalent(&got, &expected));
}

#[test]
fn sharp_cover_identity_full_minus_f_is_complement() {
    let space = CubeSpace::binary(3);
    let mut f = Cover::empty(space.clone());
    f.push_parsed("10 11 01").unwrap();
    f.push_parsed("01 10 11").unwrap();
    let lhs = sharp(&Cover::universe(space.clone()), &f);
    let rhs = complement(&f);
    assert!(covers_equivalent(&lhs, &rhs));
}

#[test]
fn tautology_large_or_chain() {
    // x0 + x0' + junk over 10 variables.
    let space = CubeSpace::binary(10);
    let mut f = Cover::empty(space.clone());
    let mut a = Cube::full(&space);
    a.clear_part(&space, 0, 0);
    let mut b = Cube::full(&space);
    b.clear_part(&space, 0, 1);
    f.push(a);
    f.push(b);
    assert!(tautology(&f));
}

#[test]
fn containment_with_many_cubes() {
    // The union of all single-variable negative literals covers everything
    // except the all-ones minterm.
    let space = CubeSpace::binary(5);
    let mut f = Cover::empty(space.clone());
    for v in 0..5 {
        let mut c = Cube::full(&space);
        c.clear_part(&space, v, 1);
        f.push(c);
    }
    assert!(!tautology(&f));
    let mut ones = Cube::zero(&space);
    for v in 0..5 {
        ones.set_part(&space, v, 1);
    }
    assert!(!cube_in_cover(&f, &ones));
    let mut almost = ones.clone();
    almost.clear_part(&space, 0, 1);
    almost.set_part(&space, 0, 0);
    assert!(cube_in_cover(&f, &almost));
}

#[test]
fn minimize_is_idempotent() {
    let text = "\
.i 3
.o 2
000 11
001 10
01- 01
10- 01
110 10
111 11
.e
";
    let pla = parse_pla(text).unwrap();
    let m1 = minimize(&pla.on, &pla.dc);
    let m2 = minimize(&m1, &pla.dc);
    assert_eq!(m1.len(), m2.len());
    assert!(covers_equivalent(&m1, &m2));
}
