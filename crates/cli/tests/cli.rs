//! End-to-end tests of the command-line tools (spawned as real processes).

use nova_trace::json;
use std::io::Write as _;
use std::process::{Command, Stdio};

const TOY_KISS: &str = "\
.i 1
.o 1
.s 2
0 a a 0
1 a b 0
- b a 1
";

const TOY_PLA: &str = "\
.i 2
.o 1
11 1
10 1
01 1
.e
";

/// Like [`run_with_stdin`] but also returns the raw exit code (`-1` when
/// killed by a signal), for the per-failure-class exit-code contract.
fn run_with_code(bin: &str, args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(bin)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    // A child rejecting its arguments may exit without reading stdin; the
    // resulting broken pipe is part of the failure mode, not a test error.
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn run_with_stdin(bin: &str, args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(bin)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn nova_encodes_from_stdin() {
    let (stdout, _, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &[], TOY_KISS);
    assert!(ok);
    assert!(stdout.contains("algorithm ihybrid"));
    assert!(stdout.contains(".code a"));
    assert!(stdout.contains(".code b"));
}

#[test]
fn nova_prints_pla_with_p() {
    let (stdout, _, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-p"], TOY_KISS);
    assert!(ok);
    assert!(stdout.contains(".i 2"));
    assert!(stdout.contains(".e"));
}

#[test]
fn nova_stats_mode() {
    let (stdout, _, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-s"], TOY_KISS);
    assert!(ok);
    assert!(stdout.contains("minimized symbolic cover"));
}

#[test]
fn nova_all_algorithms_run() {
    for alg in nova_core::Algorithm::ALL {
        let name = alg.name();
        let (stdout, stderr, ok) =
            run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-e", name], TOY_KISS);
        assert!(ok, "{name}: {stderr}");
        assert!(stdout.contains(&format!("algorithm {name}")), "{name}");
    }
    // The legacy `onehot` spelling keeps working through FromStr.
    let (_, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-e", "onehot"], TOY_KISS);
    assert!(ok, "onehot: {stderr}");
}

#[test]
fn nova_portfolio_reports_best() {
    let (stdout, stderr, ok) =
        run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["--portfolio"], TOY_KISS);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("# portfolio on"), "{stdout}");
    assert!(stdout.contains("# best:"), "{stdout}");
    assert!(stdout.contains(".code a"), "{stdout}");
}

#[test]
fn nova_portfolio_zero_timeout_fails_cleanly() {
    let (stdout, _, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--portfolio", "--timeout-ms", "0"],
        TOY_KISS,
    );
    assert!(!ok, "zero deadline cannot produce a winner");
    assert!(stdout.contains("timeout"), "{stdout}");
    assert!(stdout.contains("# best: none"), "{stdout}");
}

#[test]
fn nova_json_single_run() {
    let (stdout, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["-e", "ihybrid", "--json"],
        TOY_KISS,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"algorithm\": \"ihybrid\""), "{stdout}");
    assert!(stdout.contains("\"outcome\": \"done\""), "{stdout}");
    assert!(stdout.contains("\"stages_ms\""), "{stdout}");
    assert!(stdout.contains("\"counters\""), "{stdout}");
}

#[test]
fn nova_portfolio_json() {
    let (stdout, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--portfolio", "--json", "--jobs", "2"],
        TOY_KISS,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"machine\": \"stdin\""), "{stdout}");
    assert!(stdout.contains("\"best\""), "{stdout}");
    assert!(stdout.contains("\"runs\""), "{stdout}");
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nova-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn nova_counters_in_text_mode() {
    let (stdout, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &[], TOY_KISS);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("# counters: work"), "{stdout}");
    assert!(stdout.contains("espresso-iters"), "{stdout}");
}

#[test]
fn nova_trace_chrome_is_valid_and_balanced() {
    let path = temp_path("chrome.json");
    let path_s = path.to_str().unwrap();
    let (_, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--portfolio", "--trace", path_s],
        TOY_KISS,
    );
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let doc = json::parse(&text).expect("chrome trace parses");
    let Some(json::Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("no traceEvents: {text}");
    };
    let count = |ph: &str| {
        events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(json::Json::Str(s)) if s == ph))
            .count()
    };
    assert!(count("B") > 0);
    assert_eq!(count("B"), count("E"));
    // One span per algorithm.
    for alg in nova_core::Algorithm::ALL {
        let name = format!("algo.{}", alg.name());
        assert!(
            events
                .iter()
                .any(|e| matches!(e.get("name"), Some(json::Json::Str(s)) if *s == name)),
            "missing {name}"
        );
    }
}

#[test]
fn nova_trace_jsonl_has_schema_header() {
    let path = temp_path("trace.jsonl");
    let path_s = path.to_str().unwrap();
    let (_, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--trace", path_s, "--trace-format", "jsonl"],
        TOY_KISS,
    );
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let first = text.lines().next().expect("non-empty");
    assert!(first.contains("\"schema\":\"nova-trace/1\""), "{first}");
    for line in text.lines() {
        json::parse(line).expect("every jsonl line parses");
    }
}

#[test]
fn nova_bench_flag_loads_embedded_machine() {
    let (stdout, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--bench", "lion", "--json"],
        "",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"machine\": \"lion\""), "{stdout}");
    let (_, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--bench", "no-such-machine"],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("unknown embedded benchmark"), "{stderr}");
}

#[test]
fn nova_batch_writes_bench_report() {
    let path = temp_path("bench.json");
    let path_s = path.to_str().unwrap();
    // A filtered sweep over small machines with a tight budget keeps the
    // test fast; the report shape is what's under test, not the areas.
    let (stdout, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &[
            "--portfolio",
            "--batch",
            "--filter",
            "shiftreg,lion",
            "--budget",
            "2000",
            "--bench-out",
            path_s,
        ],
        "",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("bench report written"), "{stdout}");
    let text = std::fs::read_to_string(&path).expect("bench report written");
    std::fs::remove_file(&path).ok();
    let doc = json::parse(&text).expect("bench report parses");
    assert_eq!(doc.get("schema"), Some(&json::Json::str("nova-bench/1")));
    let Some(json::Json::Arr(machines)) = doc.get("machines") else {
        panic!("machines missing");
    };
    assert_eq!(machines.len(), 2, "--filter restricts the sweep");
    // An unknown name in --filter is an error, not a silent empty sweep.
    let (_, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--portfolio", "--batch", "--filter", "nope"],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("unknown embedded benchmark"), "{stderr}");
}

#[test]
fn nova_rejects_bad_input() {
    let (_, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &[], "not kiss at all");
    assert!(!ok);
    assert!(stderr.contains("nova:"));
}

#[test]
fn nova_state_minimize_flag() {
    let kiss = "\
.i 1
.o 1
.s 3
0 a b 0
1 a c 0
0 b a 1
1 b b 0
0 c a 1
1 c c 0
";
    let (stdout, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-m"], kiss);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("removed 1 states"), "{stderr}");
    assert!(stdout.contains("2 states"));
}

/// Every user-triggered failure maps to one line on stderr and a class-
/// specific exit code: 1 no result, 2 usage, 3 parse, 4 I/O, 5 unknown
/// benchmark. A multi-line or panicking failure is a bug.
fn assert_one_line_stderr(stderr: &str) {
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "expected exactly one stderr line, got: {stderr:?}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn nova_exit_code_parse_error() {
    let (_, stderr, code) = run_with_code(env!("CARGO_BIN_EXE_nova"), &[], ".i 1\n.o 1\nbogus\n");
    assert_eq!(code, 3, "{stderr}");
    assert_one_line_stderr(&stderr);
    assert!(stderr.starts_with("nova:"), "{stderr}");
}

#[test]
fn nova_exit_code_missing_file() {
    let (_, stderr, code) =
        run_with_code(env!("CARGO_BIN_EXE_nova"), &["/nonexistent/path.kiss2"], "");
    assert_eq!(code, 4, "{stderr}");
    assert_one_line_stderr(&stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn nova_exit_code_unknown_benchmark() {
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--bench", "no-such-machine"],
        "",
    );
    assert_eq!(code, 5, "{stderr}");
    assert_one_line_stderr(&stderr);
    assert!(stderr.contains("unknown embedded benchmark"), "{stderr}");
}

#[test]
fn nova_exit_code_batch_without_portfolio() {
    let (_, stderr, code) = run_with_code(env!("CARGO_BIN_EXE_nova"), &["--batch"], "");
    assert_eq!(code, 2, "{stderr}");
    assert_one_line_stderr(&stderr);
    assert!(stderr.contains("--batch requires --portfolio"), "{stderr}");
}

#[test]
fn nova_exit_code_bad_flag_value() {
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--timeout-ms", "not-a-number"],
        TOY_KISS,
    );
    assert_eq!(code, 2, "{stderr}");
}

#[test]
fn nova_exit_code_bad_fault_plan() {
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--fault-plan", "nonsense-spec"],
        TOY_KISS,
    );
    assert_eq!(code, 2, "{stderr}");
    assert_one_line_stderr(&stderr);
    assert!(stderr.contains("bad --fault-plan"), "{stderr}");
}

#[test]
fn nova_exit_code_no_result_under_zero_budget() {
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--portfolio", "--timeout-ms", "0"],
        TOY_KISS,
    );
    assert_eq!(code, 1, "{stderr}");
}

#[test]
fn nova_fault_plan_degrades_to_anytime_codes() {
    // An injected deadline on the first espresso-stage operation fires
    // after the driver offered the completed encoding, so the run degrades
    // to a full code listing and exits 0.
    let (stdout, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--fault-plan", "stage.espresso:1:deadline"],
        TOY_KISS,
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("degraded anytime result"), "{stdout}");
    assert!(stdout.contains(".code a"), "{stdout}");
    assert!(stdout.contains(".code b"), "{stdout}");
}

#[test]
fn nova_fault_plan_injected_panic_is_contained() {
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--fault-plan", "*:1:panic"],
        TOY_KISS,
    );
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("failed"), "{stderr}");
}

#[test]
fn nova_reads_stdin_via_explicit_dash() {
    let (stdout, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-"], TOY_KISS);
    assert!(ok, "{stderr}");
    assert!(stdout.contains(".code a"), "{stdout}");
    // `-` is stdin by name: the report calls the machine "stdin", exactly
    // like the no-argument form.
    let (stdout, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--portfolio", "--json", "-"],
        TOY_KISS,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"machine\": \"stdin\""), "{stdout}");
}

/// Full service loop as real processes: boot `nova serve`, encode through
/// `nova --remote` twice (second answer must replay the first byte for
/// byte), map a server-rejected body onto the parse exit code, then
/// SIGTERM the server and require a clean drain (exit 0).
#[test]
fn nova_serve_remote_round_trip_and_sigterm_drain() {
    use std::io::{BufRead as _, BufReader};
    let mut server = Command::new(env!("CARGO_BIN_EXE_nova"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn server");
    // The first stdout line is the startup handshake carrying the
    // kernel-chosen port.
    let stdout = server.stdout.take().expect("stdout");
    let banner = BufReader::new(stdout)
        .lines()
        .next()
        .expect("banner line")
        .expect("read banner");
    let addr = banner
        .strip_prefix("# nova-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .trim()
        .to_string();

    let encode = || {
        run_with_code(
            env!("CARGO_BIN_EXE_nova"),
            &["--remote", &addr, "-e", "ihybrid", "-"],
            TOY_KISS,
        )
    };
    let (first, stderr, code) = encode();
    assert_eq!(code, 0, "{stderr}");
    assert!(first.contains("\"schema\": \"nova-bench/1\""), "{first}");
    assert!(first.contains("\"best\": \"ihybrid\""), "{first}");
    let (second, stderr, code) = encode();
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(first, second, "cache hit replays byte-identically");

    // A body the server rejects (HTTP 400) maps onto the parse exit code.
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--remote", &addr, "-"],
        "not kiss at all",
    );
    assert_eq!(code, 3, "{stderr}");
    assert_one_line_stderr(&stderr);

    // SIGTERM: drain in-flight work and exit 0 (`kill` is a shell builtin,
    // so this stays dependency-free).
    let sent = Command::new("sh")
        .args(["-c", &format!("kill -TERM {}", server.id())])
        .status()
        .expect("send SIGTERM");
    assert!(sent.success());
    let out = server.wait_with_output().expect("wait for server");
    assert_eq!(
        out.status.code(),
        Some(0),
        "server drains and exits 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A minimal hand-written `nova-trace/1` trace with two stages whose
/// durations are given in nanoseconds — the diff-test fixture.
fn synth_trace(espresso_ns: u64, embed_ns: u64) -> String {
    let mut out = String::from("{\"schema\":\"nova-trace/1\",\"unit\":\"ns\"}\n");
    let mut ts = 0u64;
    for (id, (name, dur)) in [("stage.espresso", espresso_ns), ("stage.embed", embed_ns)]
        .iter()
        .enumerate()
    {
        let (id, seq) = (id as u64 + 1, 2 * id as u64);
        out.push_str(&format!(
            "{{\"ev\":\"B\",\"name\":\"{name}\",\"id\":{id},\"parent\":0,\"tid\":1,\"ts\":{ts},\"seq\":{seq}}}\n"
        ));
        ts += dur;
        out.push_str(&format!(
            "{{\"ev\":\"E\",\"name\":\"{name}\",\"id\":{id},\"parent\":0,\"tid\":1,\"ts\":{ts},\"seq\":{}}}\n",
            seq + 1
        ));
    }
    out
}

#[test]
fn nova_trace_report_renders_a_real_trace() {
    let path = temp_path("report-in.jsonl");
    let path_s = path.to_str().unwrap();
    let (_, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--portfolio", "--trace", path_s, "--trace-format", "jsonl"],
        TOY_KISS,
    );
    assert!(ok, "{stderr}");
    let (stdout, stderr, code) =
        run_with_code(env!("CARGO_BIN_EXE_nova"), &["trace-report", path_s], "");
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("span tree (total / self):"), "{stdout}");
    assert!(stdout.contains("per-stage aggregation:"), "{stdout}");
    assert!(stdout.contains("stage.espresso"), "{stdout}");
}

#[test]
fn nova_trace_report_diff_flags_a_slowed_stage() {
    let base = temp_path("diff-base.jsonl");
    let new = temp_path("diff-new.jsonl");
    std::fs::write(&base, synth_trace(1_000_000, 1_000_000)).unwrap();
    std::fs::write(&new, synth_trace(5_000_000, 1_000_000)).unwrap();
    let (base_s, new_s) = (base.to_str().unwrap(), new.to_str().unwrap());

    // The espresso stage is 5x slower than baseline: regression, exit 1.
    let (stdout, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["trace-report", new_s, "--diff", base_s, "--threshold", "50"],
        "",
    );
    assert_eq!(code, 1, "{stderr}");
    assert!(stdout.contains("stage.espresso"), "{stdout}");
    assert!(stdout.contains("5.00x"), "{stdout}");
    assert!(!stdout.contains("stage.embed (5"), "{stdout}");

    // Same comparison the other way round: nothing slowed, exit 0.
    let (stdout, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["trace-report", base_s, "--diff", new_s, "--threshold", "50"],
        "",
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("no stage slowed"), "{stdout}");

    // A committed nova-bench/1 report works as the baseline too.
    let bench = temp_path("diff-bench.json");
    std::fs::write(
        &bench,
        "{\"schema\":\"nova-bench/1\",\"machines\":[{\"runs\":[{\"stages_ms\":{\"espresso\":1.0,\"embed\":1.0}}]}]}",
    )
    .unwrap();
    let (stdout, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &[
            "trace-report",
            new_s,
            "--diff",
            bench.to_str().unwrap(),
            "--threshold",
            "50",
        ],
        "",
    );
    assert_eq!(code, 1, "{stderr}");
    assert!(stdout.contains("stage.espresso"), "{stdout}");

    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&new).ok();
    std::fs::remove_file(&bench).ok();
}

#[test]
fn nova_trace_report_exit_codes_for_bad_input() {
    let (_, _, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["trace-report", "/nonexistent/trace.jsonl"],
        "",
    );
    assert_eq!(code, 4, "missing file is an I/O error");
    let garbage = temp_path("not-a-trace.jsonl");
    std::fs::write(&garbage, "hello\n").unwrap();
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["trace-report", garbage.to_str().unwrap()],
        "",
    );
    std::fs::remove_file(&garbage).ok();
    assert_eq!(code, 3, "malformed trace is a parse error");
    assert_one_line_stderr(&stderr);
}

#[test]
fn nova_serve_trace_dir_feeds_trace_report() {
    use std::io::{BufRead as _, BufReader};
    let dir = temp_path("serve-traces");
    let _ = std::fs::remove_dir_all(&dir);
    let mut server = Command::new(env!("CARGO_BIN_EXE_nova"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--trace-dir",
            dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn server");
    let stdout = server.stdout.take().expect("stdout");
    let banner = BufReader::new(stdout)
        .lines()
        .next()
        .expect("banner line")
        .expect("read banner");
    let addr = banner
        .strip_prefix("# nova-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .trim()
        .to_string();
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--remote", &addr, "-e", "ihybrid", "-"],
        TOY_KISS,
    );
    assert_eq!(code, 0, "{stderr}");
    let _ = Command::new("sh")
        .args(["-c", &format!("kill -TERM {}", server.id())])
        .status();
    let _ = server.wait_with_output();

    // Exactly one request was served: one trace file, analyzable offline.
    let traces: Vec<_> = std::fs::read_dir(&dir)
        .expect("trace dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(traces.len(), 1, "{traces:?}");
    let (stdout, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["trace-report", traces[0].to_str().unwrap()],
        "",
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("request "), "traces carry the id: {stdout}");
    assert!(stdout.contains("stage.espresso"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn nova_remote_exit_codes_for_unreachable_and_misuse() {
    // Nothing listens on the discard port: I/O-class failure.
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--remote", "127.0.0.1:9", "-"],
        TOY_KISS,
    );
    assert_eq!(code, 4, "{stderr}");
    assert_one_line_stderr(&stderr);
    // --remote cannot drive a --batch sweep: usage error.
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["--remote", "127.0.0.1:9", "--portfolio", "--batch"],
        "",
    );
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--remote"), "{stderr}");
}

#[test]
fn espresso_min_minimizes() {
    let (stdout, _, ok) = run_with_stdin(env!("CARGO_BIN_EXE_espresso-min"), &["-v"], TOY_PLA);
    assert!(ok);
    assert!(stdout.contains(".p 2"), "{stdout}");
}

#[test]
fn espresso_min_exact_mode() {
    let (stdout, stderr, ok) =
        run_with_stdin(env!("CARGO_BIN_EXE_espresso-min"), &["-e", "-v"], TOY_PLA);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("PASSED"));
    assert!(stdout.contains(".p 2"));
}

#[test]
fn espresso_min_rejects_bad_pla() {
    let (_, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_espresso-min"), &[], "garbage");
    assert!(!ok);
    assert!(stderr.contains("espresso-min:"));
}

#[test]
fn nova_bench_synthetic_streams_jsonl_and_replays_across_batch_jobs() {
    let spec = "machines=4,states=5,inputs=2,outputs=2,seed=11";
    let stream_for = |jobs: &str, tag: &str| -> Vec<String> {
        let path = temp_path(&format!("stream-{tag}.jsonl"));
        let path_s = path.to_str().unwrap().to_string();
        let (_, stderr, ok) = run_with_stdin(
            env!("CARGO_BIN_EXE_nova"),
            &[
                "bench",
                "--synthetic",
                spec,
                "--budget",
                "5000",
                "--batch-jobs",
                jobs,
                "--stream",
                &path_s,
            ],
            "",
        );
        assert!(ok, "{stderr}");
        assert!(stderr.contains("machines/sec"), "{stderr}");
        let text = std::fs::read_to_string(&path).expect("stream written");
        std::fs::remove_file(&path).ok();
        text.lines().map(str::to_string).collect()
    };
    let seq = stream_for("1", "seq");
    assert_eq!(seq.len(), 4 + 2, "header + 4 machines + summary");
    let header = json::parse(&seq[0]).expect("header parses");
    assert_eq!(
        header.get("schema"),
        Some(&json::Json::str("nova-bench-stream/1"))
    );
    let fingerprint = |line: &str| -> String {
        match json::parse(line).expect("line parses").get("fingerprint") {
            Some(json::Json::Str(fp)) => fp.clone(),
            other => panic!("no fingerprint in {line}: {other:?}"),
        }
    };
    let summary = json::parse(&seq[5]).expect("summary parses");
    let s = summary.get("summary").expect("summary object");
    assert_eq!(s.get("machines"), Some(&json::Json::uint(4)));
    assert!(s.get("machines_per_sec").is_some());
    // The same sweep at --batch-jobs 3 replays to the same fingerprints.
    let par = stream_for("3", "par");
    let fps =
        |lines: &[String]| -> Vec<String> { lines[1..=4].iter().map(|l| fingerprint(l)).collect() };
    assert_eq!(fps(&seq), fps(&par), "fingerprints diverged across jobs");
}

#[test]
fn nova_bench_unwritable_output_fails_fast_with_io_exit() {
    // The output files are opened before the sweep: a bad path must exit 4
    // immediately (no machines run), never panic at the finish line.
    for flag in ["--bench-out", "--stream", "--scale-out"] {
        let (_, stderr, code) = run_with_code(
            env!("CARGO_BIN_EXE_nova"),
            &[
                "bench",
                "--synthetic",
                "machines=1000,states=8",
                flag,
                "/nonexistent-dir/out.json",
            ],
            "",
        );
        assert_eq!(code, 4, "{flag}: {stderr}");
        assert!(stderr.contains("cannot write"), "{flag}: {stderr}");
        assert!(!stderr.contains("panic"), "{flag}: {stderr}");
    }
}

#[test]
fn nova_bench_rejects_bad_spec_and_conflicting_corpora() {
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["bench", "--synthetic", "machines=0"],
        "",
    );
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("machines"), "{stderr}");
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["bench", "--synthetic", "states=9,family=kstage"],
        "",
    );
    assert_eq!(code, 2, "kstage needs power-of-two states: {stderr}");
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["bench", "--synthetic", "machines=1", "--filter", "lion"],
        "",
    );
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["bench", "--filter", "nope"],
        "",
    );
    assert_eq!(code, 5, "{stderr}");
    assert!(stderr.contains("unknown embedded benchmark"), "{stderr}");
}

#[test]
fn nova_bench_scale_out_writes_throughput_baseline() {
    let path = temp_path("scale.json");
    let path_s = path.to_str().unwrap();
    let (_, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &[
            "bench",
            "--synthetic",
            "machines=3,states=5,inputs=2,outputs=2,seed=3",
            "--budget",
            "5000",
            "--batch-jobs",
            "2",
            "--scale-out",
            path_s,
        ],
        "",
    );
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&path).expect("scale baseline written");
    std::fs::remove_file(&path).ok();
    let doc = json::parse(&text).expect("scale baseline parses");
    assert_eq!(
        doc.get("schema"),
        Some(&json::Json::str("nova-bench-scale/1"))
    );
    assert_eq!(doc.get("machines"), Some(&json::Json::uint(3)));
    assert_eq!(doc.get("batch_jobs"), Some(&json::Json::uint(2)));
    assert!(doc.get("machines_per_sec").is_some());
    assert!(doc.get("corpus").is_some());
}

#[test]
fn nova_bench_journaled_resume_merges_byte_identically() {
    let spec = "machines=6,states=5,inputs=2,outputs=2,seed=11";
    let run = |stream: &std::path::Path, journal: &std::path::Path, resume: bool| {
        let (stream_s, journal_s) = (stream.to_str().unwrap(), journal.to_str().unwrap());
        let mut args = vec![
            "bench",
            "--synthetic",
            spec,
            "--budget",
            "5000",
            "--batch-jobs",
            "2",
            "--stream",
            stream_s,
            "--journal",
            journal_s,
        ];
        if resume {
            args.push("--resume");
        }
        run_with_code(env!("CARGO_BIN_EXE_nova"), &args, "")
    };

    // Uninterrupted baseline.
    let base_stream = temp_path("resume-base.jsonl");
    let base_journal = temp_path("resume-base.journal");
    let (_, stderr, code) = run(&base_stream, &base_journal, false);
    assert_eq!(code, 0, "{stderr}");
    let journal_text = std::fs::read_to_string(&base_journal).expect("journal written");
    assert!(
        journal_text.starts_with("nova-journal/1 "),
        "{journal_text}"
    );
    assert_eq!(
        journal_text.lines().filter(|l| l.starts_with("C ")).count(),
        6,
        "one completion record per machine: {journal_text}"
    );

    // Simulate a mid-sweep kill: keep the header and the first three
    // completion records, as if the process died before the fsync of the
    // rest. Resume must replay those three and run only the other three.
    let cut_journal = temp_path("resume-cut.journal");
    let kept: Vec<&str> = journal_text.lines().take(4).collect();
    std::fs::write(&cut_journal, format!("{}\n", kept.join("\n"))).unwrap();
    let cut_stream = temp_path("resume-cut.jsonl");
    let (_, stderr, code) = run(&cut_stream, &cut_journal, true);
    assert_eq!(code, 0, "{stderr}");
    assert!(
        stderr.contains("resuming: 3 of 6 machines already complete"),
        "{stderr}"
    );

    let base = std::fs::read(&base_stream).expect("baseline stream");
    let merged = std::fs::read(&cut_stream).expect("merged stream");
    assert_eq!(base, merged, "resumed stream is byte-identical");

    // A second resume over the now-complete journal runs nothing and
    // still reproduces the same bytes.
    let again_stream = temp_path("resume-again.jsonl");
    let (_, stderr, code) = run(&again_stream, &cut_journal, true);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("resuming: 6 of 6"), "{stderr}");
    assert_eq!(base, std::fs::read(&again_stream).expect("stream"));

    for p in [
        &base_stream,
        &base_journal,
        &cut_journal,
        &cut_stream,
        &again_stream,
    ] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn nova_bench_quarantines_always_crashing_machines_and_exits_zero() {
    // An injected always-panic fault plan (satellite of the supervision
    // ladder): every machine exhausts its retries, lands in quarantine,
    // and the sweep still completes with exit 0.
    let (stdout, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &[
            "bench",
            "--synthetic",
            "machines=3,states=6,inputs=2,outputs=2,seed=9",
            "--fault-plan",
            "*:1:panic",
            "--retries",
            "1",
            "--batch-jobs",
            "2",
            "--stream",
            "-",
        ],
        "",
    );
    assert_eq!(code, 0, "quarantine is not a failure: {stderr}");
    assert!(stderr.contains("quarantined 3 machine(s)"), "{stderr}");

    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1 + 3 + 1, "header + machines + summary");
    let summary = json::parse(lines.last().unwrap()).expect("summary parses");
    let s = summary.get("summary").expect("summary object");
    assert_eq!(s.get("quarantined"), Some(&json::Json::uint(3)));
    let Some(json::Json::Arr(q)) = s.get("quarantine") else {
        panic!("quarantine section missing: {stdout}");
    };
    assert_eq!(q.len(), 3);
    for (i, entry) in q.iter().enumerate() {
        assert_eq!(entry.get("index"), Some(&json::Json::uint(i as u64)));
        assert_eq!(
            entry.get("attempts"),
            Some(&json::Json::uint(2)),
            "first try + one retry"
        );
        assert!(
            matches!(entry.get("reason"), Some(json::Json::Str(r)) if r.contains("injected panic")),
            "{entry:?}"
        );
    }
}

#[test]
fn nova_bench_journal_misuse_fails_fast_with_usage_exit() {
    let spec = "machines=2,states=5,inputs=2,outputs=2,seed=1";
    // The journal cannot share stdout with the stream.
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &[
            "bench", "--synthetic", spec, "--stream", "-", "--journal", "-",
        ],
        "",
    );
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("cannot write to stdout"), "{stderr}");

    // Nor the stream's own file: interleaved records would corrupt both.
    let shared = temp_path("journal-shared.jsonl");
    let shared_s = shared.to_str().unwrap();
    std::fs::write(&shared, "").unwrap();
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &[
            "bench",
            "--synthetic",
            spec,
            "--stream",
            shared_s,
            "--journal",
            shared_s,
        ],
        "",
    );
    std::fs::remove_file(&shared).ok();
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("same file"), "{stderr}");

    // --journal is meaningless without a stream to record.
    let journal_only = temp_path("journal-only.journal");
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &[
            "bench",
            "--synthetic",
            spec,
            "--journal",
            journal_only.to_str().unwrap(),
        ],
        "",
    );
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("requires --stream"), "{stderr}");

    // --resume without a journal to replay.
    let (_, stderr, code) = run_with_code(
        env!("CARGO_BIN_EXE_nova"),
        &["bench", "--synthetic", spec, "--stream", "-", "--resume"],
        "",
    );
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--resume requires --journal"), "{stderr}");
}
