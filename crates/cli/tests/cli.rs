//! End-to-end tests of the command-line tools (spawned as real processes).

use std::io::Write as _;
use std::process::{Command, Stdio};

const TOY_KISS: &str = "\
.i 1
.o 1
.s 2
0 a a 0
1 a b 0
- b a 1
";

const TOY_PLA: &str = "\
.i 2
.o 1
11 1
10 1
01 1
.e
";

fn run_with_stdin(bin: &str, args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(bin)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn nova_encodes_from_stdin() {
    let (stdout, _, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &[], TOY_KISS);
    assert!(ok);
    assert!(stdout.contains("algorithm ihybrid"));
    assert!(stdout.contains(".code a"));
    assert!(stdout.contains(".code b"));
}

#[test]
fn nova_prints_pla_with_p() {
    let (stdout, _, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-p"], TOY_KISS);
    assert!(ok);
    assert!(stdout.contains(".i 2"));
    assert!(stdout.contains(".e"));
}

#[test]
fn nova_stats_mode() {
    let (stdout, _, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-s"], TOY_KISS);
    assert!(ok);
    assert!(stdout.contains("minimized symbolic cover"));
}

#[test]
fn nova_all_algorithms_run() {
    for alg in nova_core::Algorithm::ALL {
        let name = alg.name();
        let (stdout, stderr, ok) =
            run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-e", name], TOY_KISS);
        assert!(ok, "{name}: {stderr}");
        assert!(stdout.contains(&format!("algorithm {name}")), "{name}");
    }
    // The legacy `onehot` spelling keeps working through FromStr.
    let (_, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-e", "onehot"], TOY_KISS);
    assert!(ok, "onehot: {stderr}");
}

#[test]
fn nova_portfolio_reports_best() {
    let (stdout, stderr, ok) =
        run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["--portfolio"], TOY_KISS);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("# portfolio on"), "{stdout}");
    assert!(stdout.contains("# best:"), "{stdout}");
    assert!(stdout.contains(".code a"), "{stdout}");
}

#[test]
fn nova_portfolio_zero_timeout_fails_cleanly() {
    let (stdout, _, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--portfolio", "--timeout-ms", "0"],
        TOY_KISS,
    );
    assert!(!ok, "zero deadline cannot produce a winner");
    assert!(stdout.contains("timeout"), "{stdout}");
    assert!(stdout.contains("# best: none"), "{stdout}");
}

#[test]
fn nova_json_single_run() {
    let (stdout, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["-e", "ihybrid", "--json"],
        TOY_KISS,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"algorithm\": \"ihybrid\""), "{stdout}");
    assert!(stdout.contains("\"outcome\": \"done\""), "{stdout}");
    assert!(stdout.contains("\"stages_ms\""), "{stdout}");
    assert!(stdout.contains("\"counters\""), "{stdout}");
}

#[test]
fn nova_portfolio_json() {
    let (stdout, stderr, ok) = run_with_stdin(
        env!("CARGO_BIN_EXE_nova"),
        &["--portfolio", "--json", "--jobs", "2"],
        TOY_KISS,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"machine\": \"stdin\""), "{stdout}");
    assert!(stdout.contains("\"best\""), "{stdout}");
    assert!(stdout.contains("\"runs\""), "{stdout}");
}

#[test]
fn nova_rejects_bad_input() {
    let (_, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &[], "not kiss at all");
    assert!(!ok);
    assert!(stderr.contains("nova:"));
}

#[test]
fn nova_state_minimize_flag() {
    let kiss = "\
.i 1
.o 1
.s 3
0 a b 0
1 a c 0
0 b a 1
1 b b 0
0 c a 1
1 c c 0
";
    let (stdout, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_nova"), &["-m"], kiss);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("removed 1 states"), "{stderr}");
    assert!(stdout.contains("2 states"));
}

#[test]
fn espresso_min_minimizes() {
    let (stdout, _, ok) = run_with_stdin(env!("CARGO_BIN_EXE_espresso-min"), &["-v"], TOY_PLA);
    assert!(ok);
    assert!(stdout.contains(".p 2"), "{stdout}");
}

#[test]
fn espresso_min_exact_mode() {
    let (stdout, stderr, ok) =
        run_with_stdin(env!("CARGO_BIN_EXE_espresso-min"), &["-e", "-v"], TOY_PLA);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("PASSED"));
    assert!(stdout.contains(".p 2"));
}

#[test]
fn espresso_min_rejects_bad_pla() {
    let (_, stderr, ok) = run_with_stdin(env!("CARGO_BIN_EXE_espresso-min"), &[], "garbage");
    assert!(!ok);
    assert!(stderr.contains("espresso-min:"));
}
