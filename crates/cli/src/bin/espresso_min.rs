//! `espresso-min` — minimize a PLA file, like the classic `espresso`
//! command.
//!
//! ```text
//! espresso-min [-e] [-v] [FILE.pla]
//!
//!   -e   exact minimization (small instances; falls back to heuristic)
//!   -v   verify the result against the input (prints a line to stderr)
//! ```
//!
//! Reads stdin when no file is given; writes the minimized PLA to stdout.

use espresso::pla::{parse_pla, write_pla};
use espresso::{minimize, minimize_exact, verify_minimized, Cover, ExactLimits};
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut exact = false;
    let mut verify = false;
    let mut file: Option<String> = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "-e" => exact = true,
            "-v" => verify = true,
            "-h" | "--help" => {
                eprintln!("usage: espresso-min [-e] [-v] [FILE.pla]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("espresso-min: unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let text = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("espresso-min: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut t = String::new();
            if std::io::stdin().read_to_string(&mut t).is_err() {
                eprintln!("espresso-min: cannot read stdin");
                return ExitCode::FAILURE;
            }
            t
        }
    };

    let pla = match parse_pla(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("espresso-min: {e}");
            return ExitCode::FAILURE;
        }
    };

    let m = if exact {
        match minimize_exact(&pla.on, &pla.dc, ExactLimits::default()) {
            Some(m) => m,
            None => {
                eprintln!("espresso-min: instance too large for exact mode; using heuristic");
                minimize(&pla.on, &pla.dc)
            }
        }
    } else {
        minimize(&pla.on, &pla.dc)
    };

    if verify {
        let ok = verify_minimized(&m, &pla.on, &pla.dc);
        eprintln!(
            "espresso-min: {} -> {} cubes, verification {}",
            pla.on.len(),
            m.len(),
            if ok { "PASSED" } else { "FAILED" }
        );
        if !ok {
            return ExitCode::FAILURE;
        }
    }

    print!("{}", write_pla(&m, &Cover::empty(m.space().clone())));
    ExitCode::SUCCESS
}
