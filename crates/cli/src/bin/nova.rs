//! `nova` — command-line state assignment, mirroring the original tool's
//! usage: read a KISS2 state transition table, encode the states, print the
//! encoding, statistics, and (optionally) the minimized encoded PLA.
//!
//! ```text
//! nova [-e ihybrid|igreedy|iexact|iohybrid|iovariant|kiss|mustang-p|mustang-n|onehot|random]
//!      [-b BITS] [-m] [-p] [-s] [FILE.kiss2]
//!
//!   -e ALG   encoding algorithm (default ihybrid)
//!   -b BITS  target code length (default: minimum)
//!   -m       state-minimize the machine first
//!   -p       print the minimized encoded PLA
//!   -s       print machine statistics only
//! ```
//!
//! Reads stdin when no file is given.

use fsm::minimize_states::minimize_states;
use fsm::Fsm;
use nova_core::driver::{run, Algorithm};
use std::io::Read as _;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: nova [-e ALG] [-b BITS] [-m] [-p] [-s] [FILE.kiss2]\n\
         ALG: ihybrid (default) | igreedy | iexact | iohybrid | iovariant |\n\
              kiss | mustang-p | mustang-n | onehot"
    );
    std::process::exit(2);
}

fn parse_algorithm(s: &str) -> Algorithm {
    match s {
        "ihybrid" => Algorithm::IHybrid,
        "igreedy" => Algorithm::IGreedy,
        "iexact" => Algorithm::IExact,
        "iohybrid" => Algorithm::IoHybrid,
        "iovariant" => Algorithm::IoVariant,
        "kiss" => Algorithm::Kiss,
        "mustang-p" => Algorithm::MustangP,
        "mustang-n" => Algorithm::MustangN,
        "onehot" | "1-hot" => Algorithm::OneHot,
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let mut algorithm = Algorithm::IHybrid;
    let mut bits: Option<u32> = None;
    let mut state_minimize = false;
    let mut print_pla = false;
    let mut stats_only = false;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-e" => algorithm = parse_algorithm(&args.next().unwrap_or_else(|| usage())),
            "-b" => {
                bits = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "-m" => state_minimize = true,
            "-p" => print_pla = true,
            "-s" => stats_only = true,
            "-h" | "--help" => usage(),
            other if !other.starts_with('-') => file = Some(other.to_string()),
            _ => usage(),
        }
    }

    let text = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("nova: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut t = String::new();
            if std::io::stdin().read_to_string(&mut t).is_err() {
                eprintln!("nova: cannot read stdin");
                return ExitCode::FAILURE;
            }
            t
        }
    };

    let name = file
        .as_deref()
        .and_then(|p| p.rsplit('/').next())
        .map(|p| p.trim_end_matches(".kiss2"))
        .unwrap_or("stdin");
    let mut machine = match Fsm::parse_kiss_named(name, &text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("nova: {e}");
            return ExitCode::FAILURE;
        }
    };

    if state_minimize {
        let r = minimize_states(&machine);
        if r.merged > 0 {
            eprintln!("nova: state minimization removed {} states", r.merged);
        }
        machine = r.fsm;
    }

    println!(
        "# {}: {} states, {} inputs, {} outputs, {} rows",
        machine.name(),
        machine.num_states(),
        machine.num_inputs(),
        machine.num_outputs(),
        machine.num_transitions()
    );
    if stats_only {
        let ics = nova_core::extract_input_constraints(&machine);
        println!("# minimized symbolic cover: {} terms", ics.mv_cover_size);
        for c in &ics.constraints {
            println!(
                "# constraint {} weight {}",
                c.set.to_vector_string(machine.num_states()),
                c.weight
            );
        }
        return ExitCode::SUCCESS;
    }

    let Some(result) = run(&machine, algorithm, bits) else {
        eprintln!("nova: {} failed on this machine", algorithm.name());
        return ExitCode::FAILURE;
    };
    println!(
        "# algorithm {}: {} bits, {} cubes, area {}, {} factored literals",
        algorithm.name(),
        result.bits,
        result.cubes,
        result.area,
        result.literals
    );
    println!("# codes:");
    for (s, sname) in machine.state_names().iter().enumerate() {
        println!(
            ".code {} {:0width$b}",
            sname,
            result.encoding.code(fsm::StateId(s)),
            width = result.bits
        );
    }

    if print_pla {
        let mut pla = fsm::encode::encode(&machine, &result.encoding);
        pla.on = espresso::minimize(&pla.on, &pla.dc);
        print!(
            "{}",
            espresso::pla::write_pla(&pla.on, &espresso::Cover::empty(pla.on.space().clone()))
        );
    }
    ExitCode::SUCCESS
}
