//! `nova` — command-line state assignment, mirroring the original tool's
//! usage: read a KISS2 state transition table, encode the states, print the
//! encoding, statistics, and (optionally) the minimized encoded PLA.
//!
//! ```text
//! nova [-e ALG] [-b BITS] [-m] [-p] [-s] [--json] [FILE.kiss2]
//! nova --portfolio [--timeout-ms N] [--budget N] [--jobs N] [--json] [FILE.kiss2]
//! nova --portfolio --batch [--timeout-ms N] [--budget N] [--jobs N] [--json]
//!
//!   -e ALG        encoding algorithm (default ihybrid)
//!   -b BITS       target code length (default: minimum)
//!   -m            state-minimize the machine first
//!   -p            print the minimized encoded PLA
//!   -s            print machine statistics only
//!   --json        emit the run report as JSON instead of text
//!   --portfolio   race all algorithms concurrently, keep the best area
//!   --batch       sweep the embedded benchmark suite (portfolio mode)
//!   --timeout-ms  wall-clock deadline for the whole portfolio
//!   --budget N    deterministic node budget per algorithm
//!   --jobs N      worker threads (default: available parallelism)
//! ```
//!
//! Reads stdin when no file is given.

use fsm::minimize_states::minimize_states;
use fsm::Fsm;
use nova_core::driver::{run, Algorithm};
use nova_engine::{json::Json, run_one, run_portfolio, run_suite, EngineConfig};
use std::io::Read as _;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    let algs: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
    eprintln!(
        "usage: nova [-e ALG] [-b BITS] [-m] [-p] [-s] [--json] [FILE.kiss2]\n\
         \u{20}      nova --portfolio [--batch] [--timeout-ms N] [--budget N] [--jobs N] [--json] [FILE.kiss2]\n\
         ALG: {} (or onehot)",
        algs.join(" | ")
    );
    std::process::exit(2);
}

fn parse_algorithm(s: &str) -> Algorithm {
    s.parse().unwrap_or_else(|_| usage())
}

struct Args {
    algorithm: Algorithm,
    bits: Option<u32>,
    state_minimize: bool,
    print_pla: bool,
    stats_only: bool,
    json: bool,
    portfolio: bool,
    batch: bool,
    timeout_ms: Option<u64>,
    budget: Option<u64>,
    jobs: usize,
    file: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        algorithm: Algorithm::IHybrid,
        bits: None,
        state_minimize: false,
        print_pla: false,
        stats_only: false,
        json: false,
        portfolio: false,
        batch: false,
        timeout_ms: None,
        budget: None,
        jobs: 0,
        file: None,
    };
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>| -> u64 {
        args.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "-e" => out.algorithm = parse_algorithm(&args.next().unwrap_or_else(|| usage())),
            "-b" => out.bits = Some(num(&mut args) as u32),
            "-m" => out.state_minimize = true,
            "-p" => out.print_pla = true,
            "-s" => out.stats_only = true,
            "--json" => out.json = true,
            "--portfolio" => out.portfolio = true,
            "--batch" => out.batch = true,
            "--timeout-ms" => out.timeout_ms = Some(num(&mut args)),
            "--budget" => out.budget = Some(num(&mut args)),
            "--jobs" => out.jobs = num(&mut args) as usize,
            "-h" | "--help" => usage(),
            other if !other.starts_with('-') => out.file = Some(other.to_string()),
            _ => usage(),
        }
    }
    out
}

fn engine_config(args: &Args) -> EngineConfig {
    EngineConfig {
        jobs: args.jobs,
        timeout: args.timeout_ms.map(Duration::from_millis),
        node_budget: args.budget,
        target_bits: args.bits,
        ..EngineConfig::default()
    }
}

fn print_portfolio_text(report: &nova_engine::PortfolioReport) {
    println!(
        "# portfolio on {} ({:.1} ms)",
        report.machine,
        report.wall.as_secs_f64() * 1e3
    );
    for run in &report.runs {
        match run.outcome.result() {
            Some(r) => println!(
                "#   {:<10} {:>2} bits {:>4} cubes area {:>7} lits {:>4}  ({:.1} ms, work {})",
                run.algorithm.name(),
                r.bits,
                r.cubes,
                r.area,
                r.literals,
                run.wall.as_secs_f64() * 1e3,
                run.counters.work,
            ),
            None => println!(
                "#   {:<10} {}  ({:.1} ms, work {})",
                run.algorithm.name(),
                run.outcome.tag(),
                run.wall.as_secs_f64() * 1e3,
                run.counters.work,
            ),
        }
    }
    match report.best() {
        Some((i, best)) => println!(
            "# best: {} with area {}",
            report.runs[i].algorithm.name(),
            best.area
        ),
        None => println!("# best: none (no algorithm finished)"),
    }
}

fn read_machine(args: &Args) -> Result<Fsm, ExitCode> {
    let text = match &args.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("nova: cannot read {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
        },
        None => {
            let mut t = String::new();
            if std::io::stdin().read_to_string(&mut t).is_err() {
                eprintln!("nova: cannot read stdin");
                return Err(ExitCode::FAILURE);
            }
            t
        }
    };
    let name = args
        .file
        .as_deref()
        .and_then(|p| p.rsplit('/').next())
        .map(|p| p.trim_end_matches(".kiss2"))
        .unwrap_or("stdin");
    let mut machine = match Fsm::parse_kiss_named(name, &text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("nova: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    if args.state_minimize {
        let r = minimize_states(&machine);
        if r.merged > 0 {
            eprintln!("nova: state minimization removed {} states", r.merged);
        }
        machine = r.fsm;
    }
    Ok(machine)
}

fn main() -> ExitCode {
    let args = parse_args();

    // Batch mode: sweep the embedded benchmark suite, no input machine.
    if args.batch {
        if !args.portfolio {
            eprintln!("nova: --batch requires --portfolio");
            return ExitCode::FAILURE;
        }
        let cfg = engine_config(&args);
        let reports = run_suite(&cfg);
        if args.json {
            let arr = Json::Arr(reports.iter().map(|r| r.to_json()).collect());
            println!("{}", arr.to_pretty());
        } else {
            for report in &reports {
                print_portfolio_text(report);
            }
        }
        return ExitCode::SUCCESS;
    }

    let machine = match read_machine(&args) {
        Ok(m) => m,
        Err(code) => return code,
    };

    if args.portfolio {
        let cfg = engine_config(&args);
        let report = run_portfolio(&machine, machine.name(), &cfg);
        if args.json {
            println!("{}", report.to_json().to_pretty());
        } else {
            print_portfolio_text(&report);
            if let Some((_, best)) = report.best() {
                println!("# codes:");
                for (s, sname) in machine.state_names().iter().enumerate() {
                    println!(
                        ".code {} {:0width$b}",
                        sname,
                        best.encoding.code(fsm::StateId(s)),
                        width = best.bits
                    );
                }
            }
        }
        return if report.best().is_some() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if !args.json {
        println!(
            "# {}: {} states, {} inputs, {} outputs, {} rows",
            machine.name(),
            machine.num_states(),
            machine.num_inputs(),
            machine.num_outputs(),
            machine.num_transitions()
        );
    }
    if args.stats_only {
        let ics = nova_core::extract_input_constraints(&machine);
        println!("# minimized symbolic cover: {} terms", ics.mv_cover_size);
        for c in &ics.constraints {
            println!(
                "# constraint {} weight {}",
                c.set.to_vector_string(machine.num_states()),
                c.weight
            );
        }
        return ExitCode::SUCCESS;
    }

    // Single-run JSON goes through the engine for stage times and counters.
    if args.json {
        let algo_run = run_one(&machine, args.algorithm, &engine_config(&args));
        let mut pairs = vec![("machine".into(), Json::str(machine.name()))];
        if let Json::Obj(rest) = algo_run.to_json() {
            pairs.extend(rest);
        }
        println!("{}", Json::Obj(pairs).to_pretty());
        return if algo_run.outcome.result().is_some() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let Some(result) = run(&machine, args.algorithm, args.bits) else {
        eprintln!("nova: {} failed on this machine", args.algorithm.name());
        return ExitCode::FAILURE;
    };
    println!(
        "# algorithm {}: {} bits, {} cubes, area {}, {} factored literals",
        args.algorithm.name(),
        result.bits,
        result.cubes,
        result.area,
        result.literals
    );
    println!("# codes:");
    for (s, sname) in machine.state_names().iter().enumerate() {
        println!(
            ".code {} {:0width$b}",
            sname,
            result.encoding.code(fsm::StateId(s)),
            width = result.bits
        );
    }

    if args.print_pla {
        let mut pla = fsm::encode::encode(&machine, &result.encoding);
        pla.on = espresso::minimize(&pla.on, &pla.dc);
        print!(
            "{}",
            espresso::pla::write_pla(&pla.on, &espresso::Cover::empty(pla.on.space().clone()))
        );
    }
    ExitCode::SUCCESS
}
