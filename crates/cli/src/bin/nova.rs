//! `nova` — command-line state assignment, mirroring the original tool's
//! usage: read a KISS2 state transition table, encode the states, print the
//! encoding, statistics, and (optionally) the minimized encoded PLA.
//!
//! ```text
//! nova [-e ALG] [-b BITS] [-m] [-p] [-s] [--json] [--trace FILE] [FILE.kiss2 | -]
//! nova --portfolio [--timeout-ms N] [--budget N] [--jobs N] [--embed-jobs N] [--espresso-jobs N] [--json] [--trace FILE] [FILE.kiss2 | -]
//! nova --portfolio --batch [--timeout-ms N] [--budget N] [--jobs N] [--embed-jobs N] [--espresso-jobs N] [--json] [--bench-out FILE]
//! nova bench [--synthetic SPEC | --filter A,B] [--batch-jobs N] [--stream FILE|-] [--journal FILE [--resume]] [--retries N] [--watchdog-ms N] [--bench-out FILE] [--scale-out FILE] [--timeout-ms N] [--budget N] [--fault-plan SPEC]
//! nova serve [--addr HOST:PORT] [--workers N] [--cache-entries N] [--cache-bytes N] [--queue-depth N] [--trace-dir DIR]
//! nova trace-report FILE.jsonl [--diff FILE2] [--threshold PCT]
//! nova --remote HOST:PORT [-e ALG | --portfolio] [-b BITS] [--budget N] [--timeout-ms N] [FILE.kiss2 | -]
//!
//!   -e ALG         encoding algorithm (default ihybrid)
//!   -b BITS        target code length (default: minimum)
//!   -m             state-minimize the machine first
//!   -p             print the minimized encoded PLA
//!   -s             print machine statistics only
//!   --json         emit the run report as JSON instead of text
//!   --portfolio    race all algorithms concurrently, keep the best area
//!   --batch        sweep the embedded benchmark suite (portfolio mode)
//!   --timeout-ms   wall-clock deadline for the whole portfolio
//!   --budget N     deterministic node budget per algorithm
//!   --jobs N       worker threads (default: available parallelism)
//!   --embed-jobs N embedding-search subtree workers per run (0 = one per
//!                  core, 1 = sequential; encodings identical either way)
//!   --espresso-jobs N  ESPRESSO unate-recursion branch workers per run
//!                  (0 = one per core, 1 = sequential; results are
//!                  bit-identical either way)
//!   --trace FILE   write a structured trace of the run to FILE
//!   --trace-format chrome (default; open in Perfetto / chrome://tracing)
//!                  or jsonl (one event per line, schema nova-trace/1)
//!   --bench NAME   run on the embedded benchmark NAME instead of a file
//!   --bench-out F  --batch: where to write the machine-readable bench
//!                  report (default BENCH_portfolio.json)
//!   --filter A,B   --batch: sweep only the named machines (comma-separated)
//!   --fault-plan S arm a deterministic nova-chaos fault plan on every run:
//!                  "STAGE:NTH:KIND[,...]" (KIND: cancel|deadline|budget|
//!                  panic; STAGE "*" = any) or "seed:N" for a derived plan
//!   --remote A     send the machine to a resident `nova serve` at A
//!                  instead of encoding in-process; prints the service's
//!                  nova-bench/1 JSON response
//!
//!   bench          sweep a corpus through the sharded batch engine:
//!   --synthetic S  sweep a generated scale corpus instead of the embedded
//!                  suite; S is a comma-separated ScaleSpec, e.g.
//!                  "machines=1000,states=16,inputs=4,outputs=4,seed=7"
//!                  (keys: machines states inputs outputs density reducible
//!                  family=random|kstage seed prefix)
//!   --batch-jobs N worker threads sweeping machines (0 = one per core;
//!                  default 1). Report content is identical at any count.
//!   --stream F     write the sweep as nova-bench-stream/1 JSONL to F
//!                  ("-" = stdout): one line per machine as it completes
//!                  plus a throughput summary — constant memory, use this
//!                  for large corpora
//!   --scale-out F  write a small nova-bench-scale/1 throughput baseline
//!                  (machines/sec) to F — what CI gates BENCH_SCALE.json on
//!   --journal F    append a crash-safe completion journal (nova-journal/1,
//!                  fsync'd in batches) alongside --stream; implies the
//!                  deterministic stream form (no wall-clock fields) so a
//!                  killed sweep can be resumed byte-identically. Must be a
//!                  real file distinct from the stream path.
//!   --resume       replay an existing --journal: already-completed
//!                  machines are skipped and their recorded lines merged
//!                  into the stream at their original positions; the merged
//!                  output is byte-identical to an uninterrupted run. The
//!                  journal must match this invocation's corpus and options.
//!   --retries N    supervised retry budget per machine before quarantine
//!                  (default 2); retries use deterministic seeded backoff
//!   --watchdog-ms N  wall-clock watchdog per machine attempt: at N ms the
//!                  run is cooperatively cancelled (keeping its degraded
//!                  best-so-far), at 2N ms it is quarantined. A sweep with
//!                  quarantined machines still completes and exits 0; they
//!                  are listed in the stream summary's quarantine section.
//!   (--bench-out, --filter, --timeout-ms, --budget, --jobs, --embed-jobs,
//!    --espresso-jobs, --fault-plan as in --portfolio --batch; --bench-out
//!    accumulates nova-bench/1 in memory, so prefer --stream at scale.
//!    Output files are created up front: an unwritable path fails fast
//!    with exit 4 before any machine runs.)
//!
//!   serve          run the resident encoding service (see nova-serve):
//!   --addr A       bind address (default 127.0.0.1:7171; port 0 = any)
//!   --workers N    request workers (default: available parallelism)
//!   --cache-entries N  result-cache entry bound (default 4096)
//!   --cache-bytes N    result-cache byte bound (default 64 MiB)
//!   --queue-depth N    admission queue bound; beyond it requests get 503
//!                      (default 64)
//!   --trace-dir DIR    write one nova-trace/1 JSONL per /encode request
//!                      into DIR (req-<request id>.jsonl)
//!
//!   trace-report   analyze a nova-trace/1 JSONL trace offline: span tree
//!                  with total/self wall time, per-stage aggregation, and
//!                  histogram quantiles
//!   --diff FILE2   compare per-stage totals against FILE2 — either a
//!                  second nova-trace/1 trace or a committed nova-bench/1
//!                  report (BENCH_*.json); exits 1 when any stage slowed
//!                  beyond the threshold
//!   --threshold P  slowdown tolerance for --diff, in percent (default 25)
//! ```
//!
//! Reads stdin when no file is given or the file is `-`.
//!
//! Exit codes: 0 success (including a degraded anytime result), 1 no result
//! (unsolved / timeout / failed / server overloaded), 2 usage error, 3 KISS2
//! parse error (or request the server rejected), 4 I/O error (or server
//! unreachable), 5 unknown embedded benchmark. The README tables map these
//! onto the service's HTTP statuses.

use espresso::FaultPlan;
use fsm::minimize_states::minimize_states;
use fsm::Fsm;
use nova_core::driver::Algorithm;
use nova_engine::{run_one, run_portfolio, EngineConfig};
use nova_trace::json::Json;
use nova_trace::Tracer;
use std::io::Read as _;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

/// No algorithm produced a usable result (unsolved / timeout / failed).
const EXIT_NO_RESULT: u8 = 1;
/// Bad command line (unknown flag, bad value, inconsistent mode).
const EXIT_USAGE: u8 = 2;
/// The input KISS2 text did not parse.
const EXIT_PARSE: u8 = 3;
/// An input or output file could not be read / written.
const EXIT_IO: u8 = 4;
/// `--bench` / `--filter` named a benchmark the suite does not embed.
const EXIT_UNKNOWN_BENCH: u8 = 5;

fn usage() -> ! {
    let algs: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
    eprintln!(
        "usage: nova [-e ALG] [-b BITS] [-m] [-p] [-s] [--json] [--trace FILE [--trace-format chrome|jsonl]] [--bench NAME] [--fault-plan SPEC] [--remote ADDR] [FILE.kiss2 | -]\n\
         \u{20}      nova --portfolio [--batch [--filter A,B] [--bench-out FILE] [--batch-jobs N]] [--timeout-ms N] [--budget N] [--jobs N] [--embed-jobs N] [--espresso-jobs N] [--json] [--trace FILE] [--fault-plan SPEC] [FILE.kiss2 | -]\n\
         \u{20}      nova bench [--synthetic SPEC | --filter A,B] [--batch-jobs N] [--stream FILE|-] [--journal FILE [--resume]] [--retries N] [--watchdog-ms N] [--bench-out FILE] [--scale-out FILE] [--timeout-ms N] [--budget N] [--fault-plan SPEC]\n\
         \u{20}      nova serve [--addr HOST:PORT] [--workers N] [--cache-entries N] [--cache-bytes N] [--queue-depth N] [--trace-dir DIR]\n\
         \u{20}      nova trace-report FILE.jsonl [--diff FILE2] [--threshold PCT]\n\
         ALG: {} (or onehot)",
        algs.join(" | ")
    );
    std::process::exit(EXIT_USAGE as i32);
}

/// Trace sink format selected by `--trace-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    /// Chrome trace-event JSON (default): one document, Perfetto-loadable.
    Chrome,
    /// `nova-trace/1` JSONL: one event per line.
    Jsonl,
}

fn parse_algorithm(s: &str) -> Algorithm {
    s.parse().unwrap_or_else(|_| usage())
}

struct Args {
    algorithm: Algorithm,
    bits: Option<u32>,
    state_minimize: bool,
    print_pla: bool,
    stats_only: bool,
    json: bool,
    portfolio: bool,
    batch: bool,
    timeout_ms: Option<u64>,
    budget: Option<u64>,
    jobs: usize,
    batch_jobs: usize,
    embed_jobs: usize,
    espresso_jobs: usize,
    trace: Option<String>,
    trace_format: TraceFormat,
    bench: Option<String>,
    bench_out: Option<String>,
    filter: Vec<String>,
    fault_plan: Option<FaultPlan>,
    remote: Option<String>,
    file: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        algorithm: Algorithm::IHybrid,
        bits: None,
        state_minimize: false,
        print_pla: false,
        stats_only: false,
        json: false,
        portfolio: false,
        batch: false,
        timeout_ms: None,
        budget: None,
        jobs: 0,
        batch_jobs: 1,
        embed_jobs: 0,
        espresso_jobs: 0,
        trace: None,
        trace_format: TraceFormat::Chrome,
        bench: None,
        bench_out: None,
        filter: Vec::new(),
        fault_plan: None,
        remote: None,
        file: None,
    };
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>| -> u64 {
        args.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "-e" => out.algorithm = parse_algorithm(&args.next().unwrap_or_else(|| usage())),
            "-b" => out.bits = Some(num(&mut args) as u32),
            "-m" => out.state_minimize = true,
            "-p" => out.print_pla = true,
            "-s" => out.stats_only = true,
            "--json" => out.json = true,
            "--portfolio" => out.portfolio = true,
            "--batch" => out.batch = true,
            "--timeout-ms" => out.timeout_ms = Some(num(&mut args)),
            "--budget" => out.budget = Some(num(&mut args)),
            "--jobs" => out.jobs = num(&mut args) as usize,
            "--batch-jobs" => out.batch_jobs = num(&mut args) as usize,
            "--embed-jobs" => out.embed_jobs = num(&mut args) as usize,
            "--espresso-jobs" => out.espresso_jobs = num(&mut args) as usize,
            "--trace" => out.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-format" => {
                out.trace_format = match args.next().as_deref() {
                    Some("chrome") => TraceFormat::Chrome,
                    Some("jsonl") => TraceFormat::Jsonl,
                    _ => usage(),
                }
            }
            "--bench" => out.bench = Some(args.next().unwrap_or_else(|| usage())),
            "--bench-out" => out.bench_out = Some(args.next().unwrap_or_else(|| usage())),
            "--filter" => {
                let list = args.next().unwrap_or_else(|| usage());
                out.filter = list.split(',').map(str::to_string).collect();
            }
            "--fault-plan" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match FaultPlan::parse(&spec) {
                    Ok(plan) => out.fault_plan = Some(plan),
                    Err(e) => {
                        eprintln!("nova: bad --fault-plan {spec:?}: {e}");
                        std::process::exit(EXIT_USAGE as i32);
                    }
                }
            }
            "--remote" => out.remote = Some(args.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            // An explicit `-` names stdin, so `... | nova -` and piping into
            // a remote server share one spelling.
            "-" => out.file = Some("-".to_string()),
            other if !other.starts_with('-') => out.file = Some(other.to_string()),
            _ => usage(),
        }
    }
    out
}

fn engine_config(args: &Args, tracer: &Tracer) -> EngineConfig {
    EngineConfig {
        jobs: args.jobs,
        embed_jobs: args.embed_jobs,
        espresso_jobs: args.espresso_jobs,
        timeout: args.timeout_ms.map(Duration::from_millis),
        node_budget: args.budget,
        target_bits: args.bits,
        tracer: tracer.clone(),
        fault_plan: args.fault_plan.clone(),
        ..EngineConfig::default()
    }
}

/// Writes the session trace to `--trace` in the selected format. Returns
/// `false` (after printing a diagnostic) when the file cannot be written.
fn write_trace(args: &Args, tracer: &Tracer) -> bool {
    let Some(path) = &args.trace else { return true };
    let result = std::fs::File::create(path).and_then(|f| {
        let mut w = std::io::BufWriter::new(f);
        match args.trace_format {
            TraceFormat::Chrome => tracer.write_chrome(&mut w),
            TraceFormat::Jsonl => tracer.write_jsonl(&mut w),
        }
    });
    match result {
        Ok(()) => true,
        Err(e) => {
            eprintln!("nova: cannot write trace {path}: {e}");
            false
        }
    }
}

fn print_portfolio_text(report: &nova_engine::PortfolioReport) {
    println!(
        "# portfolio on {} ({:.1} ms)",
        report.machine,
        report.wall.as_secs_f64() * 1e3
    );
    for run in &report.runs {
        match run.outcome.result() {
            Some(r) => println!(
                "#   {:<10} {:>2} bits {:>4} cubes area {:>7} lits {:>4}  ({:.1} ms, work {})",
                run.algorithm.name(),
                r.bits,
                r.cubes,
                r.area,
                r.literals,
                run.wall.as_secs_f64() * 1e3,
                run.counters.work,
            ),
            None if run.outcome.degradation().is_some() => {
                let d = run.outcome.degradation().expect("checked");
                println!(
                    "#   {:<10} degraded ({}, {} bits via {})  ({:.1} ms, work {})",
                    run.algorithm.name(),
                    d.reason.tag(),
                    d.encoding.bits(),
                    d.source,
                    run.wall.as_secs_f64() * 1e3,
                    run.counters.work,
                )
            }
            None => println!(
                "#   {:<10} {}  ({:.1} ms, work {})",
                run.algorithm.name(),
                run.outcome.tag(),
                run.wall.as_secs_f64() * 1e3,
                run.counters.work,
            ),
        }
    }
    match report.best() {
        Some((i, best)) => println!(
            "# best: {} with area {}",
            report.runs[i].algorithm.name(),
            best.area
        ),
        None => match report.best_degraded() {
            Some((i, d)) => println!(
                "# best: none finished; degraded fallback from {} ({}, {} bits)",
                report.runs[i].algorithm.name(),
                d.reason.tag(),
                d.encoding.bits(),
            ),
            None => println!("# best: none (no algorithm finished)"),
        },
    }
}

fn print_counters_text(c: &espresso::RunCounters) {
    println!(
        "# counters: work {} faces {} backtracks {} espresso-iters {} cubes {}->{}",
        c.work, c.faces_tried, c.backtracks, c.espresso_iterations, c.cubes_in, c.cubes_out
    );
}

fn read_machine(args: &Args) -> Result<Fsm, ExitCode> {
    if let Some(name) = &args.bench {
        let Some(b) = fsm::benchmarks::by_name(name) else {
            eprintln!("nova: unknown embedded benchmark {name:?}");
            return Err(ExitCode::from(EXIT_UNKNOWN_BENCH));
        };
        let mut machine = b.fsm;
        if args.state_minimize {
            let r = minimize_states(&machine);
            if r.merged > 0 {
                eprintln!("nova: state minimization removed {} states", r.merged);
            }
            machine = r.fsm;
        }
        return Ok(machine);
    }
    let text = match args.file.as_deref() {
        Some(path) if path != "-" => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("nova: cannot read {path}: {e}");
                return Err(ExitCode::from(EXIT_IO));
            }
        },
        _ => {
            let mut t = String::new();
            if std::io::stdin().read_to_string(&mut t).is_err() {
                eprintln!("nova: cannot read stdin");
                return Err(ExitCode::from(EXIT_IO));
            }
            t
        }
    };
    let name = args
        .file
        .as_deref()
        .filter(|p| *p != "-")
        .and_then(|p| p.rsplit('/').next())
        .map(|p| p.trim_end_matches(".kiss2"))
        .unwrap_or("stdin");
    let mut machine = match Fsm::parse_kiss_named(name, &text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("nova: {e}");
            return Err(ExitCode::from(EXIT_PARSE));
        }
    };
    if args.state_minimize {
        let r = minimize_states(&machine);
        if r.merged > 0 {
            eprintln!("nova: state minimization removed {} states", r.merged);
        }
        machine = r.fsm;
    }
    Ok(machine)
}

/// `nova bench`: sweep a corpus (embedded suite or `--synthetic` scale
/// spec) through the sharded batch engine, optionally streaming JSONL
/// (`nova-bench-stream/1`) so memory stays constant at any corpus size.
fn bench_main(argv: &[String]) -> ExitCode {
    let mut synthetic: Option<fsm::ScaleSpec> = None;
    let mut filter: Vec<String> = Vec::new();
    let mut batch_jobs = 1usize;
    let mut stream: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut scale_out: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut budget: Option<u64> = None;
    let mut jobs = 0usize;
    let mut embed_jobs = 0usize;
    let mut espresso_jobs = 0usize;
    let mut fault_plan: Option<FaultPlan> = None;
    let mut journal: Option<String> = None;
    let mut resume = false;
    let mut retries: Option<usize> = None;
    let mut watchdog_ms: Option<u64> = None;
    let mut it = argv.iter();
    let num =
        |v: Option<&String>| -> u64 { v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()) };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--synthetic" => {
                let spec = it.next().cloned().unwrap_or_else(|| usage());
                match fsm::ScaleSpec::parse(&spec) {
                    Ok(s) => synthetic = Some(s),
                    Err(e) => {
                        eprintln!("nova: bad --synthetic {spec:?}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
            "--filter" => {
                let list = it.next().cloned().unwrap_or_else(|| usage());
                filter = list.split(',').map(str::to_string).collect();
            }
            "--batch-jobs" => batch_jobs = num(it.next()) as usize,
            "--stream" => stream = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--journal" => journal = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--resume" => resume = true,
            "--retries" => retries = Some(num(it.next()) as usize),
            "--watchdog-ms" => watchdog_ms = Some(num(it.next())),
            "--bench-out" => bench_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--scale-out" => scale_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--timeout-ms" => timeout_ms = Some(num(it.next())),
            "--budget" => budget = Some(num(it.next())),
            "--jobs" => jobs = num(it.next()) as usize,
            "--embed-jobs" => embed_jobs = num(it.next()) as usize,
            "--espresso-jobs" => espresso_jobs = num(it.next()) as usize,
            "--fault-plan" => {
                let spec = it.next().cloned().unwrap_or_else(|| usage());
                match FaultPlan::parse(&spec) {
                    Ok(plan) => fault_plan = Some(plan),
                    Err(e) => {
                        eprintln!("nova: bad --fault-plan {spec:?}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
            _ => usage(),
        }
    }
    if synthetic.is_some() && !filter.is_empty() {
        eprintln!("nova: --synthetic and --filter are mutually exclusive");
        return ExitCode::from(EXIT_USAGE);
    }
    if let Some(jpath) = &journal {
        // The journal is fsync'd and replayed on resume; stdout can be
        // neither. And journal records interleaved into the stream file
        // would corrupt both — fail fast instead of writing garbage.
        if jpath == "-" || jpath == "/dev/stdout" {
            eprintln!("nova: --journal cannot write to stdout; give it its own file");
            return ExitCode::from(EXIT_USAGE);
        }
        let Some(spath) = &stream else {
            eprintln!("nova: --journal requires --stream (the journal records stream lines)");
            return ExitCode::from(EXIT_USAGE);
        };
        let canon = |p: &str| {
            if p == "-" {
                "/dev/stdout".to_string()
            } else {
                std::fs::canonicalize(p)
                    .map(|c| c.to_string_lossy().into_owned())
                    .unwrap_or_else(|_| p.to_string())
            }
        };
        if canon(jpath) == canon(spath) {
            eprintln!(
                "nova: --journal and --stream point at the same file; \
                 interleaving them would corrupt both"
            );
            return ExitCode::from(EXIT_USAGE);
        }
    }
    if resume && journal.is_none() {
        eprintln!("nova: --resume requires --journal FILE");
        return ExitCode::from(EXIT_USAGE);
    }
    if resume && bench_out.is_some() {
        eprintln!("nova: --resume cannot rebuild a full --bench-out document (replayed machines keep only their stream lines)");
        return ExitCode::from(EXIT_USAGE);
    }
    for name in &filter {
        if fsm::benchmarks::by_name(name).is_none() {
            eprintln!("nova: unknown embedded benchmark '{name}'");
            return ExitCode::from(EXIT_UNKNOWN_BENCH);
        }
    }
    let suite;
    let src: &dyn nova_engine::MachineSource = match &synthetic {
        Some(spec) => spec,
        None => {
            suite = nova_engine::SuiteSource::filtered(&filter);
            &suite
        }
    };

    // Every output file is created before the sweep starts: a 100k-machine
    // run must not discover an unwritable path at the finish line, and a
    // bad path must exit 4 (I/O), never panic.
    let create = |path: &str| -> Result<std::fs::File, ExitCode> {
        std::fs::File::create(path).map_err(|e| {
            eprintln!("nova: cannot write {path}: {e}");
            ExitCode::from(EXIT_IO)
        })
    };
    let stream_writer: Option<Box<dyn std::io::Write + Send>> = match stream.as_deref() {
        Some("-") => Some(Box::new(std::io::BufWriter::new(std::io::stdout()))),
        Some(path) => match create(path) {
            Ok(f) => Some(Box::new(std::io::BufWriter::new(f))),
            Err(code) => return code,
        },
        None => None,
    };
    let bench_out_file = match bench_out.as_deref().map(create) {
        Some(Ok(f)) => Some(f),
        Some(Err(code)) => return code,
        None => None,
    };
    let scale_out_file = match scale_out.as_deref().map(create) {
        Some(Ok(f)) => Some(f),
        Some(Err(code)) => return code,
        None => None,
    };

    let cfg = EngineConfig {
        jobs,
        embed_jobs,
        espresso_jobs,
        timeout: timeout_ms.map(Duration::from_millis),
        node_budget: budget,
        fault_plan,
        ..EngineConfig::default()
    };
    let bcfg = nova_engine::BatchConfig {
        batch_jobs,
        retries: retries.unwrap_or(nova_engine::BatchConfig::default().retries),
        watchdog: watchdog_ms.map(Duration::from_millis),
        ..nova_engine::BatchConfig::default()
    };

    // The journal binds to (corpus, every option that can change a report
    // line): resuming under different options would merge streams that were
    // never byte-compatible.
    let canonical_opts = format!(
        "budget={:?} timeout_ms={:?} fault_plan={} retries={}",
        budget,
        timeout_ms,
        cfg.fault_plan
            .as_ref()
            .map(|p| p.to_spec())
            .unwrap_or_else(|| "-".into()),
        bcfg.retries
    );
    let jkey = nova_engine::journal::journal_key(&src.describe(), &canonical_opts);

    // Resume: load the journal, validate its identity against this
    // invocation, and split the corpus into replayed and still-to-run.
    let mut pending_replay: std::collections::VecDeque<nova_engine::journal::ReplayedMachine> =
        std::collections::VecDeque::new();
    let mut replayed_quarantine: Vec<nova_engine::QuarantineRecord> = Vec::new();
    let mut completed: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    if resume {
        let jpath = journal.as_deref().unwrap_or_default();
        let replay = match nova_engine::JournalReplay::load(std::path::Path::new(jpath)) {
            Ok(r) => r,
            Err(nova_engine::journal::JournalError::Io(e)) => {
                eprintln!("nova: cannot read journal {jpath}: {e}");
                return ExitCode::from(EXIT_IO);
            }
            Err(e) => {
                eprintln!("nova: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        if replay.corpus != src.describe() || replay.machines != src.len() {
            eprintln!(
                "nova: journal {jpath} was written for corpus {:?} ({} machines), \
                 not {:?} ({} machines)",
                replay.corpus,
                replay.machines,
                src.describe(),
                src.len()
            );
            return ExitCode::from(EXIT_USAGE);
        }
        if replay.key != jkey {
            eprintln!(
                "nova: journal {jpath} was written under different encoding options; \
                 resuming would merge incompatible streams"
            );
            return ExitCode::from(EXIT_USAGE);
        }
        for m in replay.completed.values() {
            if fsm::fingerprint(&src.machine(m.index)) != m.machine_fp {
                eprintln!(
                    "nova: journal {jpath} machine {} ({}) no longer matches the corpus",
                    m.index,
                    src.name(m.index)
                );
                return ExitCode::from(EXIT_USAGE);
            }
        }
        if replay.dropped > 0 {
            eprintln!(
                "nova: journal {jpath}: dropped {} torn/corrupt trailing record(s)",
                replay.dropped
            );
        }
        completed = replay.completed.keys().copied().collect();
        for m in replay.completed.into_values() {
            if let Some(mut q) = m.quarantine.clone() {
                q.machine = src.name(q.index);
                replayed_quarantine.push(q);
            }
            pending_replay.push_back(m);
        }
        eprintln!(
            "nova: resuming: {} of {} machines already complete",
            completed.len(),
            src.len()
        );
    }
    let mut jw = match (&journal, resume) {
        (Some(p), true) => match nova_engine::JournalWriter::append(std::path::Path::new(p)) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("nova: cannot append to journal {p}: {e}");
                return ExitCode::from(EXIT_IO);
            }
        },
        (Some(p), false) => {
            match nova_engine::JournalWriter::create(
                std::path::Path::new(p),
                jkey,
                src.len(),
                &src.describe(),
            ) {
                Ok(j) => Some(j),
                Err(e) => {
                    eprintln!("nova: cannot write journal {p}: {e}");
                    return ExitCode::from(EXIT_IO);
                }
            }
        }
        (None, _) => None,
    };

    // Journaled streams drop every wall-clock field so an interrupted and
    // resumed sweep merges byte-identically with an uninterrupted one.
    let deterministic = journal.is_some();
    let mut sw = match stream_writer
        .map(|w| {
            if deterministic {
                nova_engine::StreamWriter::deterministic(
                    w,
                    &src.describe(),
                    src.len(),
                    bcfg.effective_jobs(),
                )
            } else {
                nova_engine::StreamWriter::new(w, &src.describe(), src.len(), bcfg.effective_jobs())
            }
        })
        .transpose()
    {
        Ok(sw) => sw,
        Err(e) => {
            eprintln!("nova: cannot write stream: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    // Reports are only accumulated when the caller asked for the in-memory
    // nova-bench/1 document; a streamed sweep stays O(window).
    let mut kept: Vec<nova_engine::PortfolioReport> = Vec::new();
    let keep = bench_out_file.is_some();
    let mut tally = nova_engine::StreamTally::default();
    let mut stream_err: Option<std::io::Error> = None;
    let mut journal_err: Option<std::io::Error> = None;
    let started = std::time::Instant::now();
    let bump = |tally: &mut nova_engine::StreamTally, class: nova_engine::MachineClass| match class
    {
        nova_engine::MachineClass::Solved => tally.solved += 1,
        nova_engine::MachineClass::Degraded => tally.degraded += 1,
        nova_engine::MachineClass::Unresolved => tally.unresolved += 1,
    };
    let report = nova_engine::run_batch_resumable(src, &cfg, &bcfg, &completed, &mut |i,
                                                                                     rep,
                                                                                     q| {
        // Interleave replayed lines: everything the journal completed below
        // this fresh index goes out first, keeping machine-index order.
        while pending_replay.front().is_some_and(|m| m.index < i) {
            let m = pending_replay.pop_front().expect("front checked");
            bump(&mut tally, m.class);
            if let Some(w) = &mut sw {
                if let Err(e) = w.write_raw(&m.line, m.class) {
                    stream_err.get_or_insert(e);
                }
            }
        }
        let class = nova_engine::MachineClass::of(&rep);
        bump(&mut tally, class);
        if deterministic {
            // Journal first, then stream: a kill between the two replays
            // the machine as complete and rewrites the same line.
            let line = nova_engine::StreamWriter::<std::io::Sink>::render_line(&rep, false);
            if let Some(j) = &mut jw {
                let fp = fsm::fingerprint(&src.machine(i));
                if let Err(e) = j.record(i, &fp, class, &line, q) {
                    journal_err.get_or_insert(e);
                }
            }
            if let Some(w) = &mut sw {
                if let Err(e) = w.write_raw(&line, class) {
                    stream_err.get_or_insert(e);
                }
            }
        } else if let Some(w) = &mut sw {
            if let Err(e) = w.report(&rep) {
                stream_err.get_or_insert(e);
            }
        }
        if keep {
            kept.push(rep);
        }
    });
    // Replayed machines above the last fresh index.
    while let Some(m) = pending_replay.pop_front() {
        bump(&mut tally, m.class);
        if let Some(w) = &mut sw {
            if let Err(e) = w.write_raw(&m.line, m.class) {
                stream_err.get_or_insert(e);
            }
        }
    }
    let wall = started.elapsed();
    let per_sec = nova_engine::throughput(src.len(), wall);
    let mut quarantine = replayed_quarantine;
    quarantine.extend(report.quarantined.iter().cloned());
    quarantine.sort_by_key(|q| q.index);
    if let Some(w) = sw {
        if let Some(e) = w.finish_with(&quarantine).err().or(stream_err) {
            eprintln!("nova: cannot write stream: {e}");
            return ExitCode::from(EXIT_IO);
        }
    }
    if let Some(j) = jw {
        if let Some(e) = j.finish().err().or(journal_err) {
            eprintln!(
                "nova: cannot write journal {}: {e}",
                journal.as_deref().unwrap_or("?")
            );
            return ExitCode::from(EXIT_IO);
        }
    }
    if let Some(mut f) = bench_out_file {
        let doc = nova_engine::suite_to_json_timed(&kept, wall);
        if let Err(e) = f.write_all(doc.to_pretty().as_bytes()) {
            eprintln!(
                "nova: cannot write {}: {e}",
                bench_out.as_deref().unwrap_or("?")
            );
            return ExitCode::from(EXIT_IO);
        }
    }
    if let Some(mut f) = scale_out_file {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("nova-bench-scale/1")),
            ("corpus".into(), Json::str(src.describe())),
            (
                "batch_jobs".into(),
                Json::uint(bcfg.effective_jobs() as u64),
            ),
            ("machines".into(), Json::uint(src.len() as u64)),
            ("solved".into(), Json::uint(tally.solved as u64)),
            ("degraded".into(), Json::uint(tally.degraded as u64)),
            ("unresolved".into(), Json::uint(tally.unresolved as u64)),
            ("wall_ms".into(), Json::Float(wall.as_secs_f64() * 1e3)),
            ("machines_per_sec".into(), Json::Float(per_sec)),
        ]);
        if let Err(e) = f.write_all(format!("{}\n", doc.to_pretty()).as_bytes()) {
            eprintln!(
                "nova: cannot write {}: {e}",
                scale_out.as_deref().unwrap_or("?")
            );
            return ExitCode::from(EXIT_IO);
        }
    }
    // The human-facing throughput line goes to stderr so `--stream -` keeps
    // stdout pure JSONL.
    eprintln!(
        "nova: swept {} machines in {:.1} ms ({:.1} machines/sec): {} solved, {} degraded, {} unresolved",
        src.len(),
        wall.as_secs_f64() * 1e3,
        per_sec,
        tally.solved,
        tally.degraded,
        tally.unresolved
    );
    // A quarantined machine is a completed sweep, not a failed one: the
    // stream carries the details, stderr just flags it, and the exit code
    // stays 0 so long sweeps don't lose their output to one bad machine.
    if !quarantine.is_empty() {
        eprintln!(
            "nova: quarantined {} machine(s) after {} retry attempt(s); see the stream's quarantine section",
            quarantine.len(),
            report.retries
        );
    }
    ExitCode::SUCCESS
}

/// `nova serve`: run the resident encoding service until SIGTERM/ctrl-c,
/// then drain and exit 0.
fn serve_main(args: &[String]) -> ExitCode {
    let mut cfg = nova_serve::ServerConfig {
        addr: "127.0.0.1:7171".into(),
        ..nova_serve::ServerConfig::default()
    };
    let mut it = args.iter();
    let num =
        |v: Option<&String>| -> usize { v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()) };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--workers" => cfg.workers = num(it.next()),
            "--cache-entries" => cfg.cache.max_entries = num(it.next()),
            "--cache-bytes" => cfg.cache.max_bytes = num(it.next()),
            "--queue-depth" => cfg.queue_depth = num(it.next()),
            "--trace-dir" => {
                cfg.trace_dir = Some(it.next().cloned().unwrap_or_else(|| usage()).into())
            }
            _ => usage(),
        }
    }
    nova_serve::shutdown::install();
    let addr = cfg.addr.clone();
    let handle = match nova_serve::serve(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("nova: cannot serve on {addr}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    // The address line is the startup handshake scripts wait for (port 0
    // resolves here), so flush it through any pipe buffering. Best-effort
    // writes: a consumer that closes stdout after the first line must not
    // bring the whole service down with a broken-pipe panic.
    let mut out = std::io::stdout();
    let _ = writeln!(out, "# nova-serve listening on http://{}", handle.addr());
    let _ = writeln!(
        out,
        "#   POST /encode (KISS2 or machine JSON) | GET /counters | GET /metrics | GET /healthz"
    );
    let _ = out.flush();
    handle.join();
    eprintln!("nova: serve drained cleanly");
    ExitCode::SUCCESS
}

/// `nova trace-report`: offline analysis of a `nova-trace/1` JSONL trace,
/// with an optional `--diff` against a second trace or a committed
/// `nova-bench/1` baseline. Exits 1 only when the diff finds a regression.
fn trace_report_main(args: &[String]) -> ExitCode {
    use nova_trace::report;
    let mut file: Option<String> = None;
    let mut diff_path: Option<String> = None;
    let mut threshold = 25.0_f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--diff" => diff_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage())
            }
            "-h" | "--help" => usage(),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = file else { usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("nova: cannot read {path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    let doc = match report::TraceDoc::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("nova: {path}: {e}");
            return ExitCode::from(EXIT_PARSE);
        }
    };
    print!("{}", doc.render_report());
    let Some(diff_path) = diff_path else {
        return ExitCode::SUCCESS;
    };
    let base_text = match std::fs::read_to_string(&diff_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("nova: cannot read {diff_path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    // The baseline is auto-detected: a nova-bench/1 report contributes its
    // stages_ms totals, anything else must be a second nova-trace/1 trace.
    let base_totals = match report::bench_baseline_totals(&base_text) {
        Ok(totals) => totals,
        Err(_) => match report::TraceDoc::parse(&base_text) {
            Ok(d) => d.stage_totals(),
            Err(e) => {
                eprintln!("nova: {diff_path}: neither nova-bench/1 nor nova-trace/1: {e}");
                return ExitCode::from(EXIT_PARSE);
            }
        },
    };
    let regressions = report::diff(&base_totals, &doc.stage_totals(), threshold);
    print!("{}", report::render_diff(&regressions, threshold));
    if regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_NO_RESULT)
    }
}

/// `--remote`: ship the machine to a resident service and print its
/// nova-bench/1 response, mapping HTTP statuses onto the CLI exit codes.
fn remote_main(addr: &str, machine: &Fsm, args: &Args) -> ExitCode {
    let options = nova_serve::EncodeOptions {
        algorithms: if args.portfolio {
            Algorithm::ALL.to_vec()
        } else {
            vec![args.algorithm]
        },
        bits: args.bits,
        budget: args.budget,
        timeout_ms: args.timeout_ms,
        jobs: args.jobs,
        embed_jobs: args.embed_jobs,
        espresso_jobs: args.espresso_jobs,
        fault_plan: args.fault_plan.clone(),
    };
    // Transient 503 pushback (full queue, tripped breaker, memory
    // pressure) is retried with deterministic jitter, honoring the
    // server's Retry-After hint; an unreachable server still fails fast.
    let resp = match nova_serve::client::post_kiss_retry(
        addr,
        &machine.to_kiss(),
        &options.to_query(),
        &nova_serve::RetryPolicy::default(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nova: --remote {addr}: {e}");
            return ExitCode::from(EXIT_IO);
        }
    };
    if resp.status != 200 {
        eprintln!(
            "nova: --remote {addr}: {}: {}",
            nova_serve::client::status_line(resp.status),
            resp.body.trim()
        );
        return ExitCode::from(nova_serve::client::status_exit_code(resp.status));
    }
    println!("{}", resp.body);
    // Mirror the local exit contract: a completed or degraded encoding is
    // success; a report where nothing finished is "no result".
    let has_result = nova_trace::json::parse(&resp.body)
        .ok()
        .and_then(|doc| match doc.get("machines") {
            Some(Json::Arr(machines)) => machines.first().map(|m| {
                m.get("best").is_some_and(|b| *b != Json::Null) || m.get("degraded").is_some()
            }),
            _ => None,
        })
        .unwrap_or(false);
    if has_result {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_NO_RESULT)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("bench") {
        return bench_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return serve_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("trace-report") {
        return trace_report_main(&argv[1..]);
    }
    let args = parse_args();
    let tracer = if args.trace.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };

    // Client mode: the machine is encoded by a resident nova-serve.
    if let Some(addr) = args.remote.clone() {
        if args.batch {
            eprintln!("nova: --remote does not support --batch (sweep on the server side instead)");
            return ExitCode::from(EXIT_USAGE);
        }
        let machine = match read_machine(&args) {
            Ok(m) => m,
            Err(code) => return code,
        };
        return remote_main(&addr, &machine, &args);
    }

    // Batch mode: sweep the embedded benchmark suite, no input machine.
    if args.batch {
        if !args.portfolio {
            eprintln!("nova: --batch requires --portfolio");
            return ExitCode::from(EXIT_USAGE);
        }
        for name in &args.filter {
            if fsm::benchmarks::by_name(name).is_none() {
                eprintln!("nova: unknown embedded benchmark '{name}'");
                return ExitCode::from(EXIT_UNKNOWN_BENCH);
            }
        }
        let cfg = engine_config(&args, &tracer);
        let bcfg = nova_engine::BatchConfig {
            batch_jobs: args.batch_jobs,
            ..nova_engine::BatchConfig::default()
        };
        let started = std::time::Instant::now();
        let reports = nova_engine::run_suite_batched(&cfg, &args.filter, &bcfg);
        let elapsed = started.elapsed();
        if args.json {
            let arr = Json::Arr(reports.iter().map(|r| r.to_json()).collect());
            println!("{}", arr.to_pretty());
        } else {
            for report in &reports {
                print_portfolio_text(report);
            }
        }
        let bench_path = args.bench_out.as_deref().unwrap_or("BENCH_portfolio.json");
        if let Err(e) = std::fs::write(
            bench_path,
            nova_engine::suite_to_json_timed(&reports, elapsed).to_pretty(),
        ) {
            eprintln!("nova: cannot write {bench_path}: {e}");
            return ExitCode::from(EXIT_IO);
        }
        if !args.json {
            println!("# bench report written to {bench_path}");
        }
        if !write_trace(&args, &tracer) {
            return ExitCode::from(EXIT_IO);
        }
        return ExitCode::SUCCESS;
    }

    let machine = match read_machine(&args) {
        Ok(m) => m,
        Err(code) => return code,
    };

    if args.portfolio {
        let cfg = engine_config(&args, &tracer);
        let report = run_portfolio(&machine, machine.name(), &cfg);
        if args.json {
            println!("{}", report.to_json().to_pretty());
        } else {
            print_portfolio_text(&report);
            let encoding = report
                .best()
                .map(|(_, best)| &best.encoding)
                .or_else(|| report.best_degraded().map(|(_, d)| &d.encoding));
            if let Some(encoding) = encoding {
                println!("# codes:");
                for (s, sname) in machine.state_names().iter().enumerate() {
                    println!(
                        ".code {} {:0width$b}",
                        sname,
                        encoding.code(fsm::StateId(s)),
                        width = encoding.bits()
                    );
                }
            }
        }
        if !write_trace(&args, &tracer) {
            return ExitCode::from(EXIT_IO);
        }
        return if report.best().is_some() || report.best_degraded().is_some() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(EXIT_NO_RESULT)
        };
    }

    if !args.json {
        println!(
            "# {}: {} states, {} inputs, {} outputs, {} rows",
            machine.name(),
            machine.num_states(),
            machine.num_inputs(),
            machine.num_outputs(),
            machine.num_transitions()
        );
    }
    if args.stats_only {
        let ics = nova_core::extract_input_constraints(&machine);
        println!("# minimized symbolic cover: {} terms", ics.mv_cover_size);
        for c in &ics.constraints {
            println!(
                "# constraint {} weight {}",
                c.set.to_vector_string(machine.num_states()),
                c.weight
            );
        }
        return ExitCode::SUCCESS;
    }

    // Single runs go through the engine for stage times, counters and the
    // tracer — one telemetry path for every mode.
    let algo_run = run_one(&machine, args.algorithm, &engine_config(&args, &tracer));
    if args.json {
        let mut pairs = vec![("machine".into(), Json::str(machine.name()))];
        if let Json::Obj(rest) = algo_run.to_json() {
            pairs.extend(rest);
        }
        println!("{}", Json::Obj(pairs).to_pretty());
        if !write_trace(&args, &tracer) {
            return ExitCode::from(EXIT_IO);
        }
        return if algo_run.outcome.result().is_some() || algo_run.outcome.degradation().is_some() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(EXIT_NO_RESULT)
        };
    }

    if let Some(d) = algo_run.outcome.degradation() {
        println!(
            "# algorithm {}: degraded anytime result ({}, {} bits via {})",
            args.algorithm.name(),
            d.reason.tag(),
            d.encoding.bits(),
            d.source
        );
        print_counters_text(&algo_run.counters);
        println!("# codes:");
        for (s, sname) in machine.state_names().iter().enumerate() {
            println!(
                ".code {} {:0width$b}",
                sname,
                d.encoding.code(fsm::StateId(s)),
                width = d.encoding.bits()
            );
        }
        if !write_trace(&args, &tracer) {
            return ExitCode::from(EXIT_IO);
        }
        return ExitCode::SUCCESS;
    }

    let Some(result) = algo_run.outcome.result() else {
        eprintln!(
            "nova: {} {} on this machine",
            args.algorithm.name(),
            algo_run.outcome.tag()
        );
        return ExitCode::from(EXIT_NO_RESULT);
    };
    println!(
        "# algorithm {}: {} bits, {} cubes, area {}, {} factored literals",
        args.algorithm.name(),
        result.bits,
        result.cubes,
        result.area,
        result.literals
    );
    print_counters_text(&algo_run.counters);
    println!("# codes:");
    for (s, sname) in machine.state_names().iter().enumerate() {
        println!(
            ".code {} {:0width$b}",
            sname,
            result.encoding.code(fsm::StateId(s)),
            width = result.bits
        );
    }

    if args.print_pla {
        let mut pla = fsm::encode::encode(&machine, &result.encoding);
        pla.on = espresso::minimize(&pla.on, &pla.dc);
        print!(
            "{}",
            espresso::pla::write_pla(&pla.on, &espresso::Cover::empty(pla.on.space().clone()))
        );
    }
    if !write_trace(&args, &tracer) {
        return ExitCode::from(EXIT_IO);
    }
    ExitCode::SUCCESS
}
