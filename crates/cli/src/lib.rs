//! Command-line front-ends; see the two binaries.
