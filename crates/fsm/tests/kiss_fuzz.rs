//! SplitMix64-driven robustness property tests for [`Fsm::parse_kiss`]:
//! whatever bytes come in — mutated, truncated, width-overflowing — the
//! parser must return `Ok` or a [`fsm::ParseKissError`] with a plausible
//! line number. It must never panic.

use fsm::generator::SplitMix64;
use fsm::Fsm;
use std::panic::{catch_unwind, AssertUnwindSafe};

const BASE: &str = "\
.i 2
.o 1
.s 4
.r a
00 a b 0
01 a c 0
1- b d 1
-- c a 0
10 d a 1
.e
";

/// ASCII alphabet biased toward KISS2-meaningful bytes so mutations hit the
/// parser's interesting branches, not just "bad input pattern".
const BYTES: &[u8] = b"01-abcd .iorse\t#\n4x";

fn mutate(rng: &mut SplitMix64, base: &str) -> String {
    let mut text = base.as_bytes().to_vec();
    for _ in 0..=rng.below(6) {
        match rng.below(5) {
            // Flip one byte to an alphabet byte.
            0 if !text.is_empty() => {
                let i = rng.below(text.len());
                text[i] = BYTES[rng.below(BYTES.len())];
            }
            // Truncate at an arbitrary point.
            1 if !text.is_empty() => {
                text.truncate(rng.below(text.len()));
            }
            // Delete a whole line.
            2 => {
                let s = String::from_utf8_lossy(&text).into_owned();
                let mut lines: Vec<&str> = s.lines().collect();
                if !lines.is_empty() {
                    lines.remove(rng.below(lines.len()));
                }
                text = lines.join("\n").into_bytes();
            }
            // Duplicate a line (possibly re-declaring .i / .o / .r).
            3 => {
                let s = String::from_utf8_lossy(&text).into_owned();
                let mut lines: Vec<&str> = s.lines().collect();
                if !lines.is_empty() {
                    let i = rng.below(lines.len());
                    lines.insert(i, lines[i]);
                }
                text = lines.join("\n").into_bytes();
            }
            // Blow up a declared width (`.i`/`.o` far beyond the rows).
            _ => {
                let huge = format!(".{} {}\n", ["i", "o"][rng.below(2)], rng.next_u64());
                let at = rng.below(text.len() + 1);
                text.splice(at..at, huge.into_bytes());
            }
        }
    }
    String::from_utf8_lossy(&text).into_owned()
}

#[test]
fn mutated_kiss_never_panics_and_errors_carry_plausible_lines() {
    for seed in 0..400u64 {
        let mut rng = SplitMix64::new(seed);
        let text = mutate(&mut rng, BASE);
        let outcome = catch_unwind(AssertUnwindSafe(|| Fsm::parse_kiss(&text)));
        let result = match outcome {
            Ok(r) => r,
            Err(_) => panic!("parse_kiss panicked on seed {seed}: {text:?}"),
        };
        if let Err(e) = result {
            // Line 0 is reserved for whole-file errors (missing .i / .o).
            assert!(
                e.line() <= text.lines().count(),
                "seed {seed}: error line {} beyond {} input lines: {e}",
                e.line(),
                text.lines().count()
            );
            assert!(!e.message().is_empty(), "seed {seed}: empty message");
        }
    }
}

#[test]
fn every_truncation_of_a_valid_file_parses_or_errors_cleanly() {
    for cut in 0..BASE.len() {
        let text = &BASE[..cut];
        if let Err(e) = Fsm::parse_kiss(text) {
            assert!(e.line() <= text.lines().count(), "cut {cut}: {e}");
        }
    }
}

#[test]
fn width_overflow_reports_the_offending_row() {
    // Header says 4 input bits; the row on line 3 provides 2.
    let text = ".i 4\n.o 1\n00 a b 0\n";
    let e = Fsm::parse_kiss(text).expect_err("width mismatch");
    assert_eq!(e.line(), 3);
    assert!(e.message().contains("width"), "{e}");
}

#[test]
fn malformed_row_reports_its_line_and_field_count() {
    let text = ".i 1\n.o 1\n0 a b 0\ngarbage here\n";
    let e = Fsm::parse_kiss(text).expect_err("3-field row");
    assert_eq!(e.line(), 4);
    assert!(e.message().contains("expected 4 fields"), "{e}");
}

#[test]
fn missing_headers_use_the_whole_file_line_zero() {
    let e = Fsm::parse_kiss("0 a b 0\n").expect_err("no .i/.o");
    assert_eq!(e.line(), 0);
    assert!(e.message().contains("missing"), "{e}");
}
