//! Seeded synthetic FSM generation.
//!
//! The MCNC benchmark files used in the NOVA paper are not distributable
//! with this reproduction; for the machines we cannot reconstruct from their
//! well-known tables we synthesize deterministic stand-ins matched to the
//! paper's Table I statistics (states / inputs / outputs / product terms).
//! Machines are deterministic and completely specified by construction:
//! each state's rows partition the input space (built by recursive cube
//! splitting), and next states / output patterns are drawn from small pools
//! to create the clustering structure that multiple-valued minimization
//! exploits (states mapped by an input into the same next state with equal
//! outputs — exactly what generates input constraints).
//!
//! Beyond the Table I stand-ins, [`ScaleSpec`] describes whole *corpora* of
//! shape-controlled machines for scale testing (`nova bench --synthetic`):
//! state/input/output counts, transition density, a reducibility knob that
//! plants provably mergeable states, and a Dubrova-style binary k-stage
//! family (arXiv:1009.5802) whose optimal encoding is known by construction.
//! Machine `i` of a corpus depends only on `(spec, i)` — corpora are never
//! materialized, so a 100k-machine sweep generates (and drops) one machine
//! at a time.

use crate::machine::{Fsm, StateId, Transition, Trit};
pub use crate::rng::SplitMix64;

/// Parameters of a synthetic machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthSpec {
    /// Machine name.
    pub name: String,
    /// Number of states.
    pub states: usize,
    /// Number of binary primary inputs.
    pub inputs: usize,
    /// Number of binary primary outputs.
    pub outputs: usize,
    /// Approximate number of table rows (rounded to a per-state split).
    pub terms: usize,
    /// PRNG seed (SplitMix64), fixed per benchmark for reproducibility.
    pub seed: u64,
}

/// Splits the full input cube into `k` disjoint cubes covering the whole
/// input space (recursive binary splitting of randomly chosen dash
/// positions).
fn partition_input_space(rng: &mut SplitMix64, inputs: usize, k: usize) -> Vec<Vec<Trit>> {
    let mut cubes = vec![vec![Trit::DontCare; inputs]];
    let limit = 1usize << inputs.min(20);
    let k = k.clamp(1, limit);
    while cubes.len() < k {
        // Split the cube with the most dashes (random among ties).
        let max_dashes = cubes
            .iter()
            .map(|c| c.iter().filter(|t| **t == Trit::DontCare).count())
            .max()
            .unwrap_or(0);
        if max_dashes == 0 {
            break;
        }
        let candidates: Vec<usize> = cubes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.iter().filter(|t| **t == Trit::DontCare).count() == max_dashes)
            .map(|(i, _)| i)
            .collect();
        let idx = candidates[rng.below(candidates.len())];
        let cube = cubes.swap_remove(idx);
        let dash_positions: Vec<usize> = cube
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Trit::DontCare)
            .map(|(i, _)| i)
            .collect();
        let pos = dash_positions[rng.below(dash_positions.len())];
        let mut zero = cube.clone();
        zero[pos] = Trit::Zero;
        let mut one = cube;
        one[pos] = Trit::One;
        cubes.push(zero);
        cubes.push(one);
    }
    cubes
}

/// Generates a deterministic, completely specified synthetic FSM.
///
/// # Panics
///
/// Panics if the spec has zero states or more than 63.
pub fn generate(spec: &SynthSpec) -> Fsm {
    assert!(
        spec.states >= 1 && spec.states <= 200,
        "unsupported state count"
    );
    let mut rng = SplitMix64::new(spec.seed);
    let n = spec.states;
    let per_state = (spec.terms / n.max(1)).max(1);

    // A shared "instruction decode" over the input space: rows of different
    // states with the same input region often branch to the same target
    // class, which is what creates multi-state input constraints.
    let shared_regions = partition_input_space(&mut rng, spec.inputs, per_state);
    let shared_targets: Vec<usize> = (0..shared_regions.len()).map(|_| rng.below(n)).collect();

    // Output pattern pool: a handful of patterns reused across the table.
    let pool_size = 4 + rng.below(5);
    let out_pool: Vec<Vec<Trit>> = (0..pool_size)
        .map(|_| {
            (0..spec.outputs)
                .map(|_| {
                    if rng.chance(1, 8) {
                        Trit::DontCare
                    } else if rng.chance(3, 8) {
                        Trit::One
                    } else {
                        Trit::Zero
                    }
                })
                .collect()
        })
        .collect();

    // Real control FSMs expose several *orthogonal small partitions* of the
    // state set (think of the bit-fields of a counter, or mode/phase
    // decompositions): under one input region the machine branches on one
    // feature of the state, under another region on a different feature.
    // Multiple-valued minimization then merges the states sharing a feature
    // value into small, overlapping input constraints — many of them — which
    // is the structure NOVA exploits and random codes destroy.
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    // Feature A: consecutive pairs.
    partitions.push((0..n).map(|s| s / 2).collect());
    // Feature B: halves interleaved (pairs {i, i + n/2}).
    if n >= 4 {
        partitions.push((0..n).map(|s| s % n.div_ceil(2)).collect());
    }
    // Feature C: a seeded partition into groups of ~3.
    if n >= 6 {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let j = i + rng.below(n - i);
            perm.swap(i, j);
        }
        let mut feat = vec![0usize; n];
        for (i, &st) in perm.iter().enumerate() {
            feat[st] = i / 3;
        }
        partitions.push(feat);
    }

    // Per region: branch on one feature; each feature value gets a target
    // state and an output pattern.
    let mut transitions = Vec::new();
    let mut region_plan: Vec<(usize, Vec<usize>, Vec<usize>)> = Vec::new();
    for _ in 0..shared_regions.len() {
        let f = rng.below(partitions.len());
        let num_values = partitions[f].iter().max().copied().unwrap_or(0) + 1;
        let targets: Vec<usize> = (0..num_values).map(|_| rng.below(n)).collect();
        let outs: Vec<usize> = (0..num_values).map(|_| rng.below(out_pool.len())).collect();
        region_plan.push((f, targets, outs));
    }
    let _ = &shared_targets; // superseded by the per-region plans

    #[allow(clippy::needless_range_loop)] // `s` indexes a partition chosen per inner iteration
    for s in 0..n {
        for (r, input) in shared_regions.iter().enumerate() {
            let (f, targets, outs) = &region_plan[r];
            let value = partitions[*f][s];
            // A pinch of irregularity so the machines are not perfectly
            // decomposable (real tables never are).
            let deviate = rng.chance(1, 6);
            let next = if deviate {
                rng.below(n)
            } else {
                targets[value]
            };
            let output = if spec.outputs == 0 {
                Vec::new()
            } else {
                out_pool[outs[value]].clone()
            };
            transitions.push(Transition {
                input: input.clone(),
                present: StateId(s),
                next: StateId(next),
                output,
            });
        }
    }

    let state_names = (0..n).map(|s| format!("s{s}")).collect();
    Fsm::new(
        spec.name.clone(),
        spec.inputs,
        spec.outputs,
        state_names,
        transitions,
        Some(StateId(0)),
    )
    .expect("generated machine is structurally valid")
}

/// Which structural family a [`ScaleSpec`] corpus draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleFamily {
    /// Region-partitioned machines with clustered next-state structure — a
    /// generalization of the Table I stand-ins to arbitrary shapes.
    Random,
    /// Dubrova-style binary k-stage machines (arXiv:1009.5802): `2^k` states
    /// forming a k-bit shift register with XOR feedback. The natural code of
    /// the register contents is optimal by construction (every next-state
    /// bit but one is a wire), giving a known-structure family to validate
    /// encoders against.
    KStage,
}

impl ScaleFamily {
    /// Stable lower-case tag (`family=` value and stream-header field).
    pub fn tag(&self) -> &'static str {
        match self {
            ScaleFamily::Random => "random",
            ScaleFamily::KStage => "kstage",
        }
    }
}

/// Shape of a synthetic scale corpus: `machines` FSMs, each fully determined
/// by `(spec, index)`. Parsed from the `nova bench --synthetic` spec string.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSpec {
    /// Number of machines in the corpus.
    pub machines: usize,
    /// States per machine (power of two for `family=kstage`).
    pub states: usize,
    /// Binary primary inputs per machine (forced to 1 for `kstage`).
    pub inputs: usize,
    /// Binary primary outputs per machine (forced to 1 for `kstage`).
    pub outputs: usize,
    /// Transition density in `(0, 1]`: the fraction of the (capped) input
    /// region budget each state splits into distinct rows.
    pub density: f64,
    /// Reducibility in `[0, 1]`: the probability that a state clones an
    /// earlier state's rows verbatim, making the pair behaviourally
    /// equivalent (so `minimize_states` can merge it back out).
    pub reducible: f64,
    /// Structural family.
    pub family: ScaleFamily,
    /// Corpus seed; machine `i` uses the derived seed [`crate::rng::mix`]`(seed, i)`.
    pub seed: u64,
    /// Machine-name prefix; names are `{prefix}-NNNNNN` (zero-padded so
    /// lexicographic order equals index order).
    pub prefix: String,
}

impl Default for ScaleSpec {
    fn default() -> Self {
        ScaleSpec {
            machines: 1,
            states: 16,
            inputs: 4,
            outputs: 4,
            density: 0.5,
            reducible: 0.0,
            family: ScaleFamily::Random,
            seed: 1,
            prefix: "synth".into(),
        }
    }
}

/// Hard cap on states per synthetic machine (`kstage` reaches it exactly at
/// `k = 12`). Keeps a mistyped spec from trying to materialize a machine
/// with millions of rows.
pub const MAX_SCALE_STATES: usize = 4096;

impl ScaleSpec {
    /// Parses the `--synthetic` spec string: comma-separated `key=value`
    /// pairs over `machines`, `states`, `inputs`, `outputs`, `density`,
    /// `reducible`, `family` (`random` | `kstage`), `seed`, `prefix`.
    /// Unspecified keys keep their defaults; validation errors name the
    /// offending key.
    ///
    /// ```
    /// use fsm::generator::ScaleSpec;
    /// let spec = ScaleSpec::parse("machines=100,states=32,inputs=5,seed=7").unwrap();
    /// assert_eq!((spec.machines, spec.states, spec.inputs), (100, 32, 5));
    /// ```
    pub fn parse(s: &str) -> Result<ScaleSpec, String> {
        let mut spec = ScaleSpec::default();
        for pair in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("bad {key}={value:?}: {what}");
            match key {
                "machines" => {
                    spec.machines = value.parse().map_err(|_| bad("not a count"))?;
                }
                "states" => spec.states = value.parse().map_err(|_| bad("not a count"))?,
                "inputs" => spec.inputs = value.parse().map_err(|_| bad("not a count"))?,
                "outputs" => spec.outputs = value.parse().map_err(|_| bad("not a count"))?,
                "density" => {
                    spec.density = value.parse().map_err(|_| bad("not a number"))?;
                }
                "reducible" => {
                    spec.reducible = value.parse().map_err(|_| bad("not a number"))?;
                }
                "family" => {
                    spec.family = match value {
                        "random" => ScaleFamily::Random,
                        "kstage" => ScaleFamily::KStage,
                        _ => return Err(bad("expected random or kstage")),
                    }
                }
                "seed" => spec.seed = value.parse().map_err(|_| bad("not a u64"))?,
                "prefix" => spec.prefix = value.to_string(),
                _ => return Err(format!("unknown spec key {key:?}")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Range checks shared by [`ScaleSpec::parse`] and programmatic
    /// construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("machines must be >= 1".into());
        }
        if self.states < 2 || self.states > MAX_SCALE_STATES {
            return Err(format!("states must be in 2..={MAX_SCALE_STATES}"));
        }
        if self.inputs == 0 || self.inputs > 20 {
            return Err("inputs must be in 1..=20".into());
        }
        if self.outputs > 64 {
            return Err("outputs must be <= 64".into());
        }
        if !(self.density > 0.0 && self.density <= 1.0) {
            return Err("density must be in (0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.reducible) {
            return Err("reducible must be in [0, 1]".into());
        }
        if self.family == ScaleFamily::KStage && !self.states.is_power_of_two() {
            return Err("kstage requires states to be a power of two".into());
        }
        if self.prefix.is_empty() || self.prefix.contains(|c: char| c.is_whitespace()) {
            return Err("prefix must be non-empty and whitespace-free".into());
        }
        Ok(())
    }

    /// Canonical spec string: re-parsing it reproduces the spec, and it is
    /// embedded in the `nova-bench-stream/1` header so a streamed sweep
    /// records its own corpus.
    pub fn spec_string(&self) -> String {
        format!(
            "machines={},states={},inputs={},outputs={},density={},reducible={},family={},seed={},prefix={}",
            self.machines,
            self.states,
            self.inputs,
            self.outputs,
            self.density,
            self.reducible,
            self.family.tag(),
            self.seed,
            self.prefix
        )
    }

    /// Name of machine `i` (zero-padded so lexicographic = index order).
    pub fn name(&self, i: usize) -> String {
        format!("{}-{:06}", self.prefix, i)
    }

    /// Generates machine `i` of the corpus. Depends only on `(self, i)`:
    /// any worker, on any thread, at any time produces the identical
    /// machine — the property the sharded batch engine's byte-identical
    /// replay rests on.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ScaleSpec::validate`] or `i` is out of
    /// range.
    pub fn machine(&self, i: usize) -> Fsm {
        assert!(i < self.machines, "machine index {i} out of range");
        self.validate().expect("invalid ScaleSpec");
        let seed = crate::rng::mix(self.seed, i as u64);
        match self.family {
            ScaleFamily::Random => generate_scaled(self, &self.name(i), seed),
            ScaleFamily::KStage => generate_kstage(self, &self.name(i), seed),
        }
    }
}

/// The region budget a state may split into at a given input count: the full
/// input space for small machines, capped at 64 regions so row counts stay
/// proportional to states rather than `2^inputs`.
fn region_budget(inputs: usize) -> usize {
    1usize << inputs.min(6)
}

/// Generates one `family=random` scale machine: the Table I stand-in
/// construction generalized to arbitrary state counts, with `density`
/// controlling rows per state and `reducible` planting equivalent states.
fn generate_scaled(spec: &ScaleSpec, name: &str, seed: u64) -> Fsm {
    let mut rng = SplitMix64::new(seed);
    let n = spec.states;
    let per_state = ((spec.density * region_budget(spec.inputs) as f64).ceil() as usize).max(1);

    let regions = partition_input_space(&mut rng, spec.inputs, per_state);

    // Output pattern pool (see the module docs: reuse creates the clustering
    // multiple-valued minimization exploits).
    let pool_size = 4 + rng.below(5);
    let out_pool: Vec<Vec<Trit>> = (0..pool_size)
        .map(|_| {
            (0..spec.outputs)
                .map(|_| {
                    if rng.chance(1, 8) {
                        Trit::DontCare
                    } else if rng.chance(3, 8) {
                        Trit::One
                    } else {
                        Trit::Zero
                    }
                })
                .collect()
        })
        .collect();

    // Orthogonal small partitions of the state set (pairs, interleaved
    // halves, seeded triples) — the same feature construction as the Table I
    // stand-ins, valid at any state count.
    let mut partitions: Vec<Vec<usize>> = vec![(0..n).map(|s| s / 2).collect()];
    if n >= 4 {
        partitions.push((0..n).map(|s| s % n.div_ceil(2)).collect());
    }
    if n >= 6 {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let j = i + rng.below(n - i);
            perm.swap(i, j);
        }
        let mut feat = vec![0usize; n];
        for (i, &st) in perm.iter().enumerate() {
            feat[st] = i / 3;
        }
        partitions.push(feat);
    }

    let mut region_plan: Vec<(usize, Vec<usize>, Vec<usize>)> = Vec::new();
    for _ in 0..regions.len() {
        let f = rng.below(partitions.len());
        let num_values = partitions[f].iter().max().copied().unwrap_or(0) + 1;
        let targets: Vec<usize> = (0..num_values).map(|_| rng.below(n)).collect();
        let outs: Vec<usize> = (0..num_values).map(|_| rng.below(out_pool.len())).collect();
        region_plan.push((f, targets, outs));
    }

    // Per-state row plans: (next, output-pool index) per region. A state
    // that draws the `reducible` coin clones an earlier state's whole plan,
    // making the two states behaviourally equivalent by construction.
    let reducible_permille = (spec.reducible * 1000.0).round() as u64;
    let mut plans: Vec<Vec<(usize, usize)>> = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // `s` indexes plans and every partition
    for s in 0..n {
        if s > 0 && reducible_permille > 0 && rng.chance(reducible_permille, 1000) {
            let t = rng.below(s);
            let clone = plans[t].clone();
            plans.push(clone);
            continue;
        }
        let mut rows = Vec::with_capacity(regions.len());
        for (f, targets, outs) in &region_plan {
            let value = partitions[*f][s];
            // A pinch of irregularity so the machines are not perfectly
            // decomposable (real tables never are).
            let next = if rng.chance(1, 6) {
                rng.below(n)
            } else {
                targets[value]
            };
            rows.push((next, outs[value]));
        }
        plans.push(rows);
    }

    let mut transitions = Vec::with_capacity(n * regions.len());
    for (s, rows) in plans.iter().enumerate() {
        for (r, input) in regions.iter().enumerate() {
            let (next, out) = rows[r];
            let output = if spec.outputs == 0 {
                Vec::new()
            } else {
                out_pool[out].clone()
            };
            transitions.push(Transition {
                input: input.clone(),
                present: StateId(s),
                next: StateId(next),
                output,
            });
        }
    }

    let state_names = (0..n).map(|s| format!("s{s}")).collect();
    Fsm::new(
        name.to_string(),
        spec.inputs,
        spec.outputs,
        state_names,
        transitions,
        Some(StateId(0)),
    )
    .expect("generated machine is structurally valid")
}

/// Generates one `family=kstage` machine: a `k`-stage binary shift register
/// over `2^k` states. On input `x`, state `v` steps to
/// `(v << 1 | f) mod 2^k` with feedback `f = x ⊕ v[k-1] ⊕ v[tap] ⊕ pol`;
/// the single output is the shifted-out stage `v[k-1]`. The tap position and
/// feedback polarity are drawn from the per-machine seed.
///
/// Under the *natural* encoding `e(v) = v`, next-state bit `i` equals
/// present bit `i-1` for every `i > 0` (a wire — one product term per bit)
/// and bit 0 is a 3-input XOR (four terms): the optimal structure is known
/// by construction, which is what makes this family a validation oracle.
fn generate_kstage(spec: &ScaleSpec, name: &str, seed: u64) -> Fsm {
    let k = spec.states.trailing_zeros() as usize;
    debug_assert!(spec.states.is_power_of_two() && k >= 1);
    let mut rng = SplitMix64::new(seed);
    let tap = if k >= 2 { rng.below(k - 1) } else { 0 };
    let pol = rng.chance(1, 2) as usize;
    let mask = spec.states - 1;

    let mut transitions = Vec::with_capacity(2 * spec.states);
    for v in 0..spec.states {
        let out_bit = (v >> (k - 1)) & 1;
        for x in 0..2usize {
            let f = x ^ ((v >> (k - 1)) & 1) ^ ((v >> tap) & 1) ^ pol;
            let next = ((v << 1) | f) & mask;
            transitions.push(Transition {
                input: vec![if x == 0 { Trit::Zero } else { Trit::One }],
                present: StateId(v),
                next: StateId(next),
                output: vec![if out_bit == 0 { Trit::Zero } else { Trit::One }],
            });
        }
    }

    let state_names = (0..spec.states).map(|v| format!("r{v:b}")).collect();
    Fsm::new(
        name.to_string(),
        1,
        1,
        state_names,
        transitions,
        Some(StateId(0)),
    )
    .expect("k-stage machine is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec {
            name: "synth".into(),
            states: 8,
            inputs: 4,
            outputs: 3,
            terms: 48,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&spec());
        let b = generate(&spec());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&spec());
        let mut s = spec();
        s.seed = 43;
        let b = generate(&s);
        assert_ne!(a, b);
    }

    #[test]
    fn machines_are_deterministic_tables() {
        let m = generate(&spec());
        assert!(m.is_deterministic());
    }

    #[test]
    fn machines_are_completely_specified() {
        let m = generate(&spec());
        // every state must answer every input minterm
        for s in 0..m.num_states() {
            for minterm in 0..1u32 << m.num_inputs() {
                let bits: Vec<bool> = (0..m.num_inputs()).map(|b| minterm >> b & 1 == 1).collect();
                assert!(
                    m.step(StateId(s), &bits).is_some(),
                    "state {s} input {minterm:b} unspecified"
                );
            }
        }
    }

    #[test]
    fn partition_covers_disjointly() {
        let mut rng = SplitMix64::new(7);
        let cubes = partition_input_space(&mut rng, 5, 9);
        // disjoint and total: sizes sum to 2^5
        let size: u32 = cubes
            .iter()
            .map(|c| 1u32 << c.iter().filter(|t| **t == Trit::DontCare).count())
            .sum();
        assert_eq!(size, 32);
    }

    #[test]
    fn stats_roughly_match_spec() {
        let m = generate(&spec());
        assert_eq!(m.num_states(), 8);
        assert_eq!(m.num_inputs(), 4);
        assert_eq!(m.num_outputs(), 3);
        assert!(m.num_transitions() >= 8);
    }

    #[test]
    fn scale_spec_parses_and_round_trips() {
        let s = ScaleSpec::parse("machines=100,states=32,inputs=5,outputs=3,density=0.25,seed=9")
            .unwrap();
        assert_eq!(s.machines, 100);
        assert_eq!(s.states, 32);
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 3);
        assert_eq!(s.density, 0.25);
        assert_eq!(s.seed, 9);
        let again = ScaleSpec::parse(&s.spec_string()).unwrap();
        assert_eq!(s, again);
        // Defaults apply to unspecified keys; empty spec is the default.
        assert_eq!(ScaleSpec::parse("").unwrap(), ScaleSpec::default());
    }

    #[test]
    fn scale_spec_rejects_bad_input() {
        for bad in [
            "machines=0",
            "states=1",
            "states=9999",
            "inputs=0",
            "density=0",
            "density=1.5",
            "reducible=2",
            "family=weird",
            "nonsense=1",
            "machines",
            "states=32,family=kstage,states=33",
            "prefix=has space",
        ] {
            assert!(ScaleSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
        // kstage demands a power-of-two state count.
        assert!(ScaleSpec::parse("family=kstage,states=24").is_err());
        assert!(ScaleSpec::parse("family=kstage,states=32").is_ok());
    }

    #[test]
    fn scale_machines_are_deterministic_and_distinct() {
        let spec = ScaleSpec::parse("machines=8,states=20,inputs=4,outputs=4,seed=3").unwrap();
        for i in 0..spec.machines {
            let a = spec.machine(i);
            let b = spec.machine(i);
            assert_eq!(a, b, "machine {i} not reproducible");
            assert_eq!(a.num_states(), 20);
            assert!(a.is_deterministic());
        }
        assert_ne!(spec.machine(0), spec.machine(1));
        // Index order matches lexicographic name order (stream invariant).
        let names: Vec<String> = (0..spec.machines).map(|i| spec.name(i)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn density_controls_rows_per_state() {
        let lo = ScaleSpec::parse("states=16,inputs=6,density=0.1,seed=5")
            .unwrap()
            .machine(0);
        let hi = ScaleSpec::parse("states=16,inputs=6,density=1.0,seed=5")
            .unwrap()
            .machine(0);
        assert!(
            hi.num_transitions() >= 4 * lo.num_transitions(),
            "density 1.0 ({} rows) should dwarf 0.1 ({} rows)",
            hi.num_transitions(),
            lo.num_transitions()
        );
    }

    #[test]
    fn reducible_knob_plants_mergeable_states() {
        use crate::minimize_states::minimize_states;
        let tight = ScaleSpec::parse("states=24,inputs=4,reducible=0.5,seed=11")
            .unwrap()
            .machine(0);
        let merged = minimize_states(&tight).merged;
        assert!(merged > 0, "reducible=0.5 produced no equivalent states");
        // reducible=0 has no *planted* equivalences (coincidental ones are
        // possible in principle, so only the knob's direction is asserted).
        let loose = ScaleSpec::parse("states=24,inputs=4,reducible=0,seed=11")
            .unwrap()
            .machine(0);
        assert!(minimize_states(&loose).merged <= merged);
    }

    #[test]
    fn scale_generation_handles_thousands_of_states() {
        let spec = ScaleSpec::parse("states=2048,inputs=8,outputs=8,density=0.2,seed=2").unwrap();
        let m = spec.machine(0);
        assert_eq!(m.num_states(), 2048);
        assert!(m.is_deterministic());
    }

    #[test]
    fn kstage_structure_is_as_constructed() {
        let spec = ScaleSpec::parse("family=kstage,states=16,machines=4,seed=6").unwrap();
        for i in 0..spec.machines {
            let m = spec.machine(i);
            assert_eq!(m.num_states(), 16);
            assert_eq!(m.num_inputs(), 1);
            assert_eq!(m.num_outputs(), 1);
            // Exactly two rows per state and fully deterministic.
            assert_eq!(m.num_transitions(), 32);
            assert!(m.is_deterministic());
            assert_eq!(m, spec.machine(i), "not reproducible");
        }
    }

    #[test]
    fn kstage_natural_code_beats_a_scrambled_code() {
        use crate::encode::{encode, Encoding};
        // The natural code e(v) = v makes all but one next-state bit a wire;
        // a bit-scrambled code destroys that structure. Minimized cover
        // sizes must reflect it — this is the "known-optimal structure"
        // validation the family exists for.
        let spec = ScaleSpec::parse("family=kstage,states=32,seed=8").unwrap();
        let m = spec.machine(0);
        let n = m.num_states();
        let natural = Encoding::new(5, (0..n as u64).collect()).unwrap();
        // A seeded random permutation of the codes destroys the register
        // locality almost surely (a bit-reversal would not: a reversed
        // shift register is still a shift register).
        let mut perm: Vec<u64> = (0..n as u64).collect();
        let mut rng = SplitMix64::new(0x5c2a);
        for i in 0..n {
            let j = i + rng.below(n - i);
            perm.swap(i, j);
        }
        let scrambled = Encoding::new(5, perm).unwrap();
        let cubes = |e: &Encoding| {
            let pla = encode(&m, e);
            espresso::minimize(&pla.on, &pla.dc).len()
        };
        let (nat, scr) = (cubes(&natural), cubes(&scrambled));
        assert!(
            nat < scr,
            "natural code ({nat} cubes) should beat scrambled ({scr} cubes)"
        );
    }
}
