//! Seeded synthetic FSM generation.
//!
//! The MCNC benchmark files used in the NOVA paper are not distributable
//! with this reproduction; for the machines we cannot reconstruct from their
//! well-known tables we synthesize deterministic stand-ins matched to the
//! paper's Table I statistics (states / inputs / outputs / product terms).
//! Machines are deterministic and completely specified by construction:
//! each state's rows partition the input space (built by recursive cube
//! splitting), and next states / output patterns are drawn from small pools
//! to create the clustering structure that multiple-valued minimization
//! exploits (states mapped by an input into the same next state with equal
//! outputs — exactly what generates input constraints).

use crate::machine::{Fsm, StateId, Transition, Trit};

/// Parameters of a synthetic machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthSpec {
    /// Machine name.
    pub name: String,
    /// Number of states.
    pub states: usize,
    /// Number of binary primary inputs.
    pub inputs: usize,
    /// Number of binary primary outputs.
    pub outputs: usize,
    /// Approximate number of table rows (rounded to a per-state split).
    pub terms: usize,
    /// PRNG seed (SplitMix64), fixed per benchmark for reproducibility.
    pub seed: u64,
}

/// A tiny deterministic PRNG (SplitMix64) so synthetic benchmarks do not
/// depend on external crate version stability.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// Splits the full input cube into `k` disjoint cubes covering the whole
/// input space (recursive binary splitting of randomly chosen dash
/// positions).
fn partition_input_space(rng: &mut SplitMix64, inputs: usize, k: usize) -> Vec<Vec<Trit>> {
    let mut cubes = vec![vec![Trit::DontCare; inputs]];
    let limit = 1usize << inputs.min(20);
    let k = k.clamp(1, limit);
    while cubes.len() < k {
        // Split the cube with the most dashes (random among ties).
        let max_dashes = cubes
            .iter()
            .map(|c| c.iter().filter(|t| **t == Trit::DontCare).count())
            .max()
            .unwrap_or(0);
        if max_dashes == 0 {
            break;
        }
        let candidates: Vec<usize> = cubes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.iter().filter(|t| **t == Trit::DontCare).count() == max_dashes)
            .map(|(i, _)| i)
            .collect();
        let idx = candidates[rng.below(candidates.len())];
        let cube = cubes.swap_remove(idx);
        let dash_positions: Vec<usize> = cube
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Trit::DontCare)
            .map(|(i, _)| i)
            .collect();
        let pos = dash_positions[rng.below(dash_positions.len())];
        let mut zero = cube.clone();
        zero[pos] = Trit::Zero;
        let mut one = cube;
        one[pos] = Trit::One;
        cubes.push(zero);
        cubes.push(one);
    }
    cubes
}

/// Generates a deterministic, completely specified synthetic FSM.
///
/// # Panics
///
/// Panics if the spec has zero states or more than 63.
pub fn generate(spec: &SynthSpec) -> Fsm {
    assert!(
        spec.states >= 1 && spec.states <= 200,
        "unsupported state count"
    );
    let mut rng = SplitMix64::new(spec.seed);
    let n = spec.states;
    let per_state = (spec.terms / n.max(1)).max(1);

    // A shared "instruction decode" over the input space: rows of different
    // states with the same input region often branch to the same target
    // class, which is what creates multi-state input constraints.
    let shared_regions = partition_input_space(&mut rng, spec.inputs, per_state);
    let shared_targets: Vec<usize> = (0..shared_regions.len()).map(|_| rng.below(n)).collect();

    // Output pattern pool: a handful of patterns reused across the table.
    let pool_size = 4 + rng.below(5);
    let out_pool: Vec<Vec<Trit>> = (0..pool_size)
        .map(|_| {
            (0..spec.outputs)
                .map(|_| {
                    if rng.chance(1, 8) {
                        Trit::DontCare
                    } else if rng.chance(3, 8) {
                        Trit::One
                    } else {
                        Trit::Zero
                    }
                })
                .collect()
        })
        .collect();

    // Real control FSMs expose several *orthogonal small partitions* of the
    // state set (think of the bit-fields of a counter, or mode/phase
    // decompositions): under one input region the machine branches on one
    // feature of the state, under another region on a different feature.
    // Multiple-valued minimization then merges the states sharing a feature
    // value into small, overlapping input constraints — many of them — which
    // is the structure NOVA exploits and random codes destroy.
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    // Feature A: consecutive pairs.
    partitions.push((0..n).map(|s| s / 2).collect());
    // Feature B: halves interleaved (pairs {i, i + n/2}).
    if n >= 4 {
        partitions.push((0..n).map(|s| s % n.div_ceil(2)).collect());
    }
    // Feature C: a seeded partition into groups of ~3.
    if n >= 6 {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let j = i + rng.below(n - i);
            perm.swap(i, j);
        }
        let mut feat = vec![0usize; n];
        for (i, &st) in perm.iter().enumerate() {
            feat[st] = i / 3;
        }
        partitions.push(feat);
    }

    // Per region: branch on one feature; each feature value gets a target
    // state and an output pattern.
    let mut transitions = Vec::new();
    let mut region_plan: Vec<(usize, Vec<usize>, Vec<usize>)> = Vec::new();
    for _ in 0..shared_regions.len() {
        let f = rng.below(partitions.len());
        let num_values = partitions[f].iter().max().copied().unwrap_or(0) + 1;
        let targets: Vec<usize> = (0..num_values).map(|_| rng.below(n)).collect();
        let outs: Vec<usize> = (0..num_values).map(|_| rng.below(out_pool.len())).collect();
        region_plan.push((f, targets, outs));
    }
    let _ = &shared_targets; // superseded by the per-region plans

    #[allow(clippy::needless_range_loop)] // `s` indexes a partition chosen per inner iteration
    for s in 0..n {
        for (r, input) in shared_regions.iter().enumerate() {
            let (f, targets, outs) = &region_plan[r];
            let value = partitions[*f][s];
            // A pinch of irregularity so the machines are not perfectly
            // decomposable (real tables never are).
            let deviate = rng.chance(1, 6);
            let next = if deviate {
                rng.below(n)
            } else {
                targets[value]
            };
            let output = if spec.outputs == 0 {
                Vec::new()
            } else {
                out_pool[outs[value]].clone()
            };
            transitions.push(Transition {
                input: input.clone(),
                present: StateId(s),
                next: StateId(next),
                output,
            });
        }
    }

    let state_names = (0..n).map(|s| format!("s{s}")).collect();
    Fsm::new(
        spec.name.clone(),
        spec.inputs,
        spec.outputs,
        state_names,
        transitions,
        Some(StateId(0)),
    )
    .expect("generated machine is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec {
            name: "synth".into(),
            states: 8,
            inputs: 4,
            outputs: 3,
            terms: 48,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&spec());
        let b = generate(&spec());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&spec());
        let mut s = spec();
        s.seed = 43;
        let b = generate(&s);
        assert_ne!(a, b);
    }

    #[test]
    fn machines_are_deterministic_tables() {
        let m = generate(&spec());
        assert!(m.is_deterministic());
    }

    #[test]
    fn machines_are_completely_specified() {
        let m = generate(&spec());
        // every state must answer every input minterm
        for s in 0..m.num_states() {
            for minterm in 0..1u32 << m.num_inputs() {
                let bits: Vec<bool> = (0..m.num_inputs()).map(|b| minterm >> b & 1 == 1).collect();
                assert!(
                    m.step(StateId(s), &bits).is_some(),
                    "state {s} input {minterm:b} unspecified"
                );
            }
        }
    }

    #[test]
    fn partition_covers_disjointly() {
        let mut rng = SplitMix64::new(7);
        let cubes = partition_input_space(&mut rng, 5, 9);
        // disjoint and total: sizes sum to 2^5
        let size: u32 = cubes
            .iter()
            .map(|c| 1u32 << c.iter().filter(|t| **t == Trit::DontCare).count())
            .sum();
        assert_eq!(size, 32);
    }

    #[test]
    fn stats_roughly_match_spec() {
        let m = generate(&spec());
        assert_eq!(m.num_states(), 8);
        assert_eq!(m.num_inputs(), 4);
        assert_eq!(m.num_outputs(), 3);
        assert!(m.num_transitions() >= 8);
    }
}
