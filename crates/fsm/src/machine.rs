//! The finite-state-machine model: state transition tables in the style of
//! KISS2, the input format of KISS/NOVA.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Index of a symbolic state within an [`Fsm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub usize);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One character of a binary input or output pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trit {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Don't care (`-` in KISS2).
    DontCare,
}

impl Trit {
    /// Parses one pattern character.
    pub fn from_char(c: char) -> Option<Trit> {
        match c {
            '0' => Some(Trit::Zero),
            '1' => Some(Trit::One),
            '-' | '2' => Some(Trit::DontCare),
            _ => None,
        }
    }

    /// The KISS2 character for this trit.
    pub fn to_char(self) -> char {
        match self {
            Trit::Zero => '0',
            Trit::One => '1',
            Trit::DontCare => '-',
        }
    }

    /// Whether a concrete bit matches this pattern position.
    pub fn matches(self, bit: bool) -> bool {
        match self {
            Trit::Zero => !bit,
            Trit::One => bit,
            Trit::DontCare => true,
        }
    }
}

/// One row of a state transition table: on `input` (a cube over the binary
/// primary inputs) in state `present`, go to `next` and assert `output`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Input pattern (one [`Trit`] per primary input).
    pub input: Vec<Trit>,
    /// Present state.
    pub present: StateId,
    /// Next state.
    pub next: StateId,
    /// Output pattern (don't-care outputs allowed).
    pub output: Vec<Trit>,
}

/// A synchronous FSM described by a state transition table.
///
/// # Examples
///
/// ```
/// use fsm::Fsm;
///
/// let kiss = "\
/// .i 1
/// .o 1
/// .s 2
/// 0 a a 0
/// 1 a b 0
/// - b a 1
/// ";
/// let m = Fsm::parse_kiss(kiss)?;
/// assert_eq!(m.num_states(), 2);
/// assert_eq!(m.num_transitions(), 3);
/// # Ok::<(), fsm::ParseKissError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    state_names: Vec<String>,
    transitions: Vec<Transition>,
    reset: Option<StateId>,
}

/// Error from [`Fsm::new`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmError(String);

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fsm: {}", self.0)
    }
}

impl Error for FsmError {}

/// Error from [`Fsm::parse_kiss`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKissError {
    line: usize,
    message: String,
}

impl ParseKissError {
    /// 1-based line number of the offending input line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of what was wrong with the line.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseKissError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kiss parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseKissError {}

impl Fsm {
    /// Builds an FSM from parts, validating pattern widths and state ids.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError`] when a transition's patterns do not match the
    /// declared widths or reference out-of-range states.
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        state_names: Vec<String>,
        transitions: Vec<Transition>,
        reset: Option<StateId>,
    ) -> Result<Self, FsmError> {
        let m = Fsm {
            name: name.into(),
            num_inputs,
            num_outputs,
            state_names,
            transitions,
            reset,
        };
        m.validate()?;
        Ok(m)
    }

    fn validate(&self) -> Result<(), FsmError> {
        let n = self.state_names.len();
        if n == 0 {
            return Err(FsmError("no states".into()));
        }
        if let Some(r) = self.reset {
            if r.0 >= n {
                return Err(FsmError("reset state out of range".into()));
            }
        }
        for (i, t) in self.transitions.iter().enumerate() {
            if t.input.len() != self.num_inputs {
                return Err(FsmError(format!("transition {i}: bad input width")));
            }
            if t.output.len() != self.num_outputs {
                return Err(FsmError(format!("transition {i}: bad output width")));
            }
            if t.present.0 >= n || t.next.0 >= n {
                return Err(FsmError(format!("transition {i}: state out of range")));
            }
        }
        Ok(())
    }

    /// Parses the KISS2 format (`.i .o .s .p .r` headers and transition
    /// rows `input present next output`). States are numbered in order of
    /// first appearance.
    ///
    /// # Errors
    ///
    /// Returns [`ParseKissError`] on malformed rows or inconsistent widths.
    pub fn parse_kiss(text: &str) -> Result<Fsm, ParseKissError> {
        Self::parse_kiss_named("fsm", text)
    }

    /// Like [`Fsm::parse_kiss`] but attaches a machine name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseKissError`] on malformed rows or inconsistent widths.
    pub fn parse_kiss_named(name: &str, text: &str) -> Result<Fsm, ParseKissError> {
        let err = |line: usize, m: String| ParseKissError { line, message: m };
        let mut num_inputs = None;
        let mut num_outputs = None;
        let mut reset_name: Option<String> = None;
        let mut state_ids: BTreeMap<String, usize> = BTreeMap::new();
        let mut state_names: Vec<String> = Vec::new();
        let mut rows: Vec<(usize, Vec<&str>)> = Vec::new();

        for (ln, raw) in text.lines().enumerate() {
            let line = ln + 1;
            let l = raw.split('#').next().unwrap_or("").trim();
            if l.is_empty() {
                continue;
            }
            if let Some(rest) = l.strip_prefix('.') {
                let mut it = rest.split_whitespace();
                match it.next().unwrap_or("") {
                    "i" => {
                        num_inputs = Some(
                            it.next()
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| err(line, "bad .i".into()))?,
                        )
                    }
                    "o" => {
                        num_outputs = Some(
                            it.next()
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| err(line, "bad .o".into()))?,
                        )
                    }
                    "r" => reset_name = it.next().map(str::to_owned),
                    "s" | "p" => {} // advisory counts
                    "e" | "end" => break,
                    other => return Err(err(line, format!("unknown directive .{other}"))),
                }
            } else {
                let fields: Vec<&str> = l.split_whitespace().collect();
                if fields.len() != 4 {
                    return Err(err(
                        line,
                        format!("expected 4 fields, got {}", fields.len()),
                    ));
                }
                rows.push((line, fields));
            }
        }

        let num_inputs = num_inputs.ok_or_else(|| err(0, "missing .i".into()))?;
        let num_outputs = num_outputs.ok_or_else(|| err(0, "missing .o".into()))?;

        let mut intern = |name: &str, state_names: &mut Vec<String>| -> usize {
            *state_ids.entry(name.to_owned()).or_insert_with(|| {
                state_names.push(name.to_owned());
                state_names.len() - 1
            })
        };

        // Reset state (if declared) gets id 0, matching NOVA's convention of
        // listing the reset state first.
        if let Some(r) = &reset_name {
            intern(r, &mut state_names);
        }

        let mut transitions = Vec::with_capacity(rows.len());
        for (line, f) in rows {
            let input: Option<Vec<Trit>> = f[0].chars().map(Trit::from_char).collect();
            let input = input.ok_or_else(|| err(line, format!("bad input pattern {:?}", f[0])))?;
            if input.len() != num_inputs {
                return Err(err(line, "input width mismatch".into()));
            }
            let present = StateId(intern(f[1], &mut state_names));
            let next = StateId(intern(f[2], &mut state_names));
            let output: Option<Vec<Trit>> = f[3].chars().map(Trit::from_char).collect();
            let output =
                output.ok_or_else(|| err(line, format!("bad output pattern {:?}", f[3])))?;
            if output.len() != num_outputs {
                return Err(err(line, "output width mismatch".into()));
            }
            transitions.push(Transition {
                input,
                present,
                next,
                output,
            });
        }

        let reset = reset_name.map(|r| StateId(state_ids[&r]));
        Fsm::new(
            name,
            num_inputs,
            num_outputs,
            state_names,
            transitions,
            reset,
        )
        .map_err(|e| err(0, e.to_string()))
    }

    /// Renders the machine in KISS2 format.
    pub fn to_kiss(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            ".i {}\n.o {}\n.s {}\n.p {}\n",
            self.num_inputs,
            self.num_outputs,
            self.num_states(),
            self.num_transitions()
        ));
        if let Some(r) = self.reset {
            s.push_str(&format!(".r {}\n", self.state_names[r.0]));
        }
        for t in &self.transitions {
            for tr in &t.input {
                s.push(tr.to_char());
            }
            s.push(' ');
            s.push_str(&self.state_names[t.present.0]);
            s.push(' ');
            s.push_str(&self.state_names[t.next.0]);
            s.push(' ');
            for tr in &t.output {
                s.push(tr.to_char());
            }
            s.push('\n');
        }
        s
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of binary primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of binary primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of symbolic states.
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Number of table rows.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The state names, indexed by [`StateId`].
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }

    /// The transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Declared reset state, if any.
    pub fn reset(&self) -> Option<StateId> {
        self.reset
    }

    /// Minimum number of state bits: `ceil(log2(num_states))`, at least 1.
    pub fn min_bits(&self) -> usize {
        let n = self.num_states();
        if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        }
    }

    /// Looks up the transition taken from `state` under the concrete input
    /// `bits` (little-endian: `bits[i]` drives input `i`). Returns the first
    /// matching row, reflecting deterministic tables.
    pub fn step(&self, state: StateId, bits: &[bool]) -> Option<&Transition> {
        self.transitions.iter().find(|t| {
            t.present == state
                && t.input
                    .iter()
                    .zip(bits)
                    .all(|(pattern, &b)| pattern.matches(b))
        })
    }

    /// Checks determinism: no two rows of the same present state overlap on
    /// inputs while disagreeing on next state or (specified) outputs.
    pub fn is_deterministic(&self) -> bool {
        for (i, a) in self.transitions.iter().enumerate() {
            for b in &self.transitions[i + 1..] {
                if a.present != b.present {
                    continue;
                }
                let overlap = a.input.iter().zip(&b.input).all(|(x, y)| {
                    !matches!((x, y), (Trit::Zero, Trit::One) | (Trit::One, Trit::Zero))
                });
                if !overlap {
                    continue;
                }
                if a.next != b.next {
                    return false;
                }
                let outputs_conflict = a.output.iter().zip(&b.output).any(|(x, y)| {
                    matches!((x, y), (Trit::Zero, Trit::One) | (Trit::One, Trit::Zero))
                });
                if outputs_conflict {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "\
.i 2
.o 1
.s 3
.r a
00 a a 0
01 a b 0
1- a c 1
-- b a 0
-- c b 1
";

    #[test]
    fn parse_kiss_basics() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        assert_eq!(m.num_inputs(), 2);
        assert_eq!(m.num_outputs(), 1);
        assert_eq!(m.num_states(), 3);
        assert_eq!(m.num_transitions(), 5);
        assert_eq!(m.reset(), Some(StateId(0)));
        assert_eq!(m.state_names()[0], "a");
    }

    #[test]
    fn kiss_roundtrip() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let again = Fsm::parse_kiss(&m.to_kiss()).unwrap();
        assert_eq!(m.transitions(), again.transitions());
        assert_eq!(m.state_names(), again.state_names());
    }

    #[test]
    fn reset_state_is_zero_even_when_seen_late() {
        let kiss = "\
.i 1
.o 1
.r z
0 a z 0
1 z a 1
";
        let m = Fsm::parse_kiss(kiss).unwrap();
        assert_eq!(m.state_names()[0], "z");
        assert_eq!(m.reset(), Some(StateId(0)));
    }

    #[test]
    fn step_matches_patterns() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let t = m.step(StateId(0), &[true, false]).unwrap();
        assert_eq!(t.next, StateId(2));
        let t = m.step(StateId(0), &[false, true]).unwrap();
        assert_eq!(t.next, StateId(1));
    }

    #[test]
    fn determinism_check() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        assert!(m.is_deterministic());
        let bad = "\
.i 1
.o 1
- a a 0
1 a b 0
";
        let m = Fsm::parse_kiss(bad).unwrap();
        assert!(!m.is_deterministic());
    }

    #[test]
    fn min_bits() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        assert_eq!(m.min_bits(), 2);
    }

    #[test]
    fn rejects_bad_rows() {
        assert!(Fsm::parse_kiss(".i 2\n.o 1\n0 a b 0\n").is_err());
        assert!(Fsm::parse_kiss(".i 1\n.o 1\n0 a b\n").is_err());
        assert!(Fsm::parse_kiss("0 a b 0\n").is_err());
    }
}
