//! Simulation of symbolic FSMs and of encoded PLA implementations, used to
//! check that an encoding preserves behaviour.

use crate::encode::{EncodedPla, Encoding};
use crate::machine::{Fsm, StateId, Trit};
use espresso::{Cover, Cube};

/// Output of one symbolic step: next state and the output pattern (with
/// `None` for don't-care output bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicStep {
    /// Next state.
    pub next: StateId,
    /// Outputs; `None` where the table says `-`.
    pub outputs: Vec<Option<bool>>,
}

/// Steps the symbolic machine. Returns `None` when the table leaves the
/// (state, input) combination unspecified.
pub fn step_symbolic(fsm: &Fsm, state: StateId, inputs: &[bool]) -> Option<SymbolicStep> {
    let t = fsm.step(state, inputs)?;
    Some(SymbolicStep {
        next: t.next,
        outputs: t
            .output
            .iter()
            .map(|tr| match tr {
                Trit::Zero => Some(false),
                Trit::One => Some(true),
                Trit::DontCare => None,
            })
            .collect(),
    })
}

fn eval_output(on: &Cover, minterm: &Cube, part: u32) -> bool {
    let space = on.space();
    let ov = space.output_var().expect("pla cover");
    on.iter()
        .any(|c| c.has_part(space, ov, part) && minterm.is_subset_of(c))
}

/// Steps the encoded PLA: evaluates next-state bits and outputs at the
/// minterm `(inputs, state_code)`.
pub fn step_encoded(pla: &EncodedPla, state_code: u64, inputs: &[bool]) -> (u64, Vec<bool>) {
    let space = pla.on.space();
    let mut minterm = Cube::zero(space);
    for (v, &b) in inputs.iter().enumerate() {
        minterm.set_part(space, v, u32::from(b));
    }
    for b in 0..pla.state_bits {
        minterm.set_part(space, pla.inputs + b, (state_code >> b & 1) as u32);
    }
    // The output field stays empty so `is_subset_of` tests only the input
    // half of each cube.
    let mut next = 0u64;
    for b in 0..pla.state_bits {
        if eval_output(&pla.on, &minterm, b as u32) {
            next |= 1 << b;
        }
    }
    let outputs = (0..pla.outputs)
        .map(|o| eval_output(&pla.on, &minterm, (pla.state_bits + o) as u32))
        .collect();
    (next, outputs)
}

/// Checks that `pla` (typically a minimized encoded cover repackaged in an
/// [`EncodedPla`]) implements `fsm` under `enc` along the given input
/// sequence starting from `start`: specified outputs must match and the
/// next-state code must equal the code of the symbolic next state, for every
/// step where the table specifies the transition.
pub fn check_sequence(
    fsm: &Fsm,
    enc: &Encoding,
    pla: &EncodedPla,
    start: StateId,
    sequence: &[Vec<bool>],
) -> Result<(), String> {
    let mut sym = start;
    let mut code = enc.code(start);
    for (i, inputs) in sequence.iter().enumerate() {
        let Some(step) = step_symbolic(fsm, sym, inputs) else {
            return Ok(()); // unspecified: any behaviour is fine from here on
        };
        let (next_code, outs) = step_encoded(pla, code, inputs);
        for (o, expected) in step.outputs.iter().enumerate() {
            if let Some(e) = expected {
                if outs[o] != *e {
                    return Err(format!(
                        "step {i}: output {o} is {} but the table says {e}",
                        outs[o]
                    ));
                }
            }
        }
        if next_code != enc.code(step.next) {
            return Err(format!(
                "step {i}: next code {next_code:#b} != code of {} ({:#b})",
                step.next,
                enc.code(step.next)
            ));
        }
        sym = step.next;
        code = next_code;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use espresso::minimize;

    const TOY: &str = "\
.i 1
.o 1
.s 2
0 a a 0
1 a b 0
- b a 1
";

    fn seq(bits: &[u8]) -> Vec<Vec<bool>> {
        bits.iter().map(|&b| vec![b == 1]).collect()
    }

    #[test]
    fn symbolic_step() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let s = step_symbolic(&m, StateId(0), &[true]).unwrap();
        assert_eq!(s.next, StateId(1));
        assert_eq!(s.outputs, vec![Some(false)]);
    }

    #[test]
    fn encoded_matches_symbolic_raw() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let e = Encoding::new(1, vec![0, 1]).unwrap();
        let pla = encode(&m, &e);
        check_sequence(&m, &e, &pla, StateId(0), &seq(&[1, 0, 1, 1, 0, 0])).unwrap();
    }

    #[test]
    fn encoded_matches_symbolic_after_minimization() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let e = Encoding::new(1, vec![0, 1]).unwrap();
        let mut pla = encode(&m, &e);
        pla.on = minimize(&pla.on, &pla.dc);
        check_sequence(&m, &e, &pla, StateId(0), &seq(&[1, 1, 0, 1, 0, 1, 1])).unwrap();
    }

    #[test]
    fn detects_wrong_implementation() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let e = Encoding::new(1, vec![0, 1]).unwrap();
        let mut pla = encode(&m, &e);
        // Sabotage: drop all on-cubes.
        pla.on = Cover::empty(pla.on.space().clone());
        assert!(check_sequence(&m, &e, &pla, StateId(0), &seq(&[0, 1, 0])).is_err());
    }
}
