//! Content-addressed machine fingerprints.
//!
//! The engine's byte-identical-replay guarantee (nova-chaos) makes encoding
//! results safely cacheable: the same machine under the same algorithm and
//! options always produces the same report. The missing piece is a stable
//! *identity* for "the same machine" — this module provides it as a 128-bit
//! FNV-1a hash over a canonical serialization of the state transition table.
//!
//! Properties:
//!
//! * **Content-addressed** — the machine *name* is excluded: `lion` parsed
//!   from a file and the same table pasted on stdin fingerprint identically.
//! * **Format-insensitive** — hashing runs over the parsed table, not the
//!   source text, so comment/whitespace/`.p`-header differences vanish.
//! * **Stable** — the canonical form is versioned (`nova-fsm-fp/1`); any
//!   change to it must bump the tag so old cache entries cannot alias.
//!
//! State names *are* part of the canonical form: encoders report codes
//! against the declared state list, so two tables that differ only in state
//! naming are different machines to a consumer reading `.code` lines back.

use crate::machine::Fsm;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// 128-bit FNV-1a over raw bytes, returned as 32 lowercase hex digits.
pub fn fnv1a128(bytes: &[u8]) -> String {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    format!("{h:032x}")
}

/// Canonical fingerprint of a machine: 32 hex digits, independent of the
/// machine's name and of the source formatting it was parsed from.
///
/// ```
/// use fsm::Fsm;
///
/// let a = Fsm::parse_kiss(".i 1\n.o 1\n0 a b 0\n1 b a 1\n")?;
/// // Same table, different name, extra comments and advisory headers.
/// let b = Fsm::parse_kiss_named("other", "# hi\n.i 1\n.o 1\n.p 2\n0 a b 0\n1 b a 1\n")?;
/// assert_eq!(fsm::fingerprint(&a), fsm::fingerprint(&b));
/// # Ok::<(), fsm::ParseKissError>(())
/// ```
pub fn fingerprint(fsm: &Fsm) -> String {
    fnv1a128(canonical_bytes(fsm).as_bytes())
}

/// The versioned canonical serialization the fingerprint hashes. Exposed so
/// tests (and debugging) can see exactly what identity covers.
pub fn canonical_bytes(fsm: &Fsm) -> String {
    let mut s = String::new();
    s.push_str("nova-fsm-fp/1\n");
    s.push_str(&format!(
        ".i {}\n.o {}\n.s {}\n",
        fsm.num_inputs(),
        fsm.num_outputs(),
        fsm.num_states()
    ));
    match fsm.reset() {
        Some(r) => s.push_str(&format!(".r {}\n", r.0)),
        None => s.push_str(".r -\n"),
    }
    for name in fsm.state_names() {
        s.push_str(&format!(".n {name}\n"));
    }
    for t in fsm.transitions() {
        for tr in &t.input {
            s.push(tr.to_char());
        }
        s.push_str(&format!(" {} {} ", t.present.0, t.next.0));
        for tr in &t.output {
            s.push(tr.to_char());
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = "\
.i 1
.o 1
.s 2
0 a a 0
1 a b 0
- b a 1
";

    #[test]
    fn known_fnv_vectors() {
        // Standard FNV-1a 128 test vectors.
        assert_eq!(fnv1a128(b""), "6c62272e07bb014262b821756295c58d");
        assert_eq!(fnv1a128(b"a"), "d228cb696f1a8caf78912b704e4a8964");
    }

    #[test]
    fn name_and_formatting_do_not_matter() {
        let a = Fsm::parse_kiss(TOY).unwrap();
        let b = Fsm::parse_kiss_named(
            "renamed",
            "# comment\n.i 1\n.o 1\n.s 2\n.p 3\n\n0 a a 0\n1 a b 0\n- b a 1\n.e\n",
        )
        .unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn content_changes_do_matter() {
        let base = Fsm::parse_kiss(TOY).unwrap();
        let fp = fingerprint(&base);
        // Flip one output bit.
        let other = Fsm::parse_kiss(".i 1\n.o 1\n.s 2\n0 a a 1\n1 a b 0\n- b a 1\n").unwrap();
        assert_ne!(fp, fingerprint(&other));
        // Rename a state: still a different machine (codes are reported
        // against the state list).
        let renamed = Fsm::parse_kiss(".i 1\n.o 1\n.s 2\n0 x x 0\n1 x b 0\n- b x 1\n").unwrap();
        assert_ne!(fp, fingerprint(&renamed));
        // Declare a reset state.
        let reset = Fsm::parse_kiss(".i 1\n.o 1\n.s 2\n.r a\n0 a a 0\n1 a b 0\n- b a 1\n").unwrap();
        assert_ne!(fp, fingerprint(&reset));
    }

    #[test]
    fn stable_across_calls_and_roundtrip() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let fp = fingerprint(&m);
        assert_eq!(fp.len(), 32);
        assert_eq!(fp, fingerprint(&m));
        let again = Fsm::parse_kiss(&m.to_kiss()).unwrap();
        assert_eq!(fp, fingerprint(&again));
    }
}
