//! # fsm — finite-state-machine substrate for the NOVA reproduction
//!
//! Everything NOVA needs around the machines themselves:
//!
//! * the [`Fsm`] state-transition-table model and KISS2 parsing/printing
//!   ([`machine`]),
//! * construction of the multiple-valued **symbolic cover** whose
//!   minimization yields input constraints ([`symbolic`]),
//! * application of a state [`Encoding`] to produce a binary PLA cover with
//!   the right don't-care structure ([`encode`]),
//! * the paper's **PLA area model** ([`area`]),
//! * behavioural **simulation** of both the symbolic machine and encoded
//!   implementations for equivalence checking ([`simulate`]),
//! * the embedded **benchmark suite** of Tables I–V ([`benchmarks`]), the
//!   seeded synthetic generator backing its stand-ins, and the
//!   shape-controlled **scale corpus** generator ([`generator::ScaleSpec`])
//!   behind `nova bench --synthetic`,
//! * the canonical seeded PRNG shared by every deterministic component
//!   ([`rng`]),
//! * content-addressed machine **fingerprints** for result caching
//!   ([`fingerprint`]).
//!
//! ## Example: encode and minimize a machine
//!
//! ```
//! use fsm::{benchmarks, encode::{encode, Encoding}};
//! use espresso::minimize;
//!
//! let m = benchmarks::by_name("shiftreg").expect("embedded").fsm;
//! let enc = Encoding::new(3, (0..8).collect())?;
//! let pla = encode(&m, &enc);
//! let minimized = minimize(&pla.on, &pla.dc);
//! let area = pla.area_for(minimized.len());
//! assert!(area > 0);
//! # Ok::<(), fsm::encode::EncodingError>(())
//! ```

pub mod area;
pub mod benchmarks;
pub mod encode;
pub mod fingerprint;
pub mod generator;
pub mod machine;
pub mod minimize_states;
pub mod rng;
pub mod simulate;
pub mod symbolic;

pub use encode::{EncodedPla, Encoding};
pub use fingerprint::fingerprint;
pub use generator::ScaleSpec;
pub use machine::{Fsm, FsmError, ParseKissError, StateId, Transition, Trit};
pub use rng::SplitMix64;
pub use symbolic::{symbolic_cover, SymbolicCover};
