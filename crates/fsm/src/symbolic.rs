//! Symbolic (multiple-valued) covers of an FSM's combinational component.
//!
//! Following KISS/NOVA, the present state is one multiple-valued variable
//! (one part per state) and the output variable carries the 1-hot next state
//! followed by the binary primary outputs. Multiple-valued minimization of
//! this cover groups present states into the *input constraints* that drive
//! the state assignment.

use crate::machine::{Fsm, StateId, Trit};
use espresso::{complement, Cover, Cube, CubeSpace, VarKind};

/// The symbolic cover of an FSM: on-set, don't-care set, and the layout
/// bookkeeping needed to interpret cubes.
#[derive(Debug, Clone)]
pub struct SymbolicCover {
    /// On-set (one cube per transition row, plus nothing else).
    pub on: Cover,
    /// Don't-care set: unspecified transitions and `-` outputs.
    pub dc: Cover,
    /// Index of the present-state multiple-valued variable.
    pub pstate_var: usize,
    /// Number of binary primary inputs (variables `0..inputs`).
    pub inputs: usize,
    /// Number of states (parts of the present-state variable and the
    /// next-state prefix of the output variable).
    pub states: usize,
    /// Number of binary primary outputs (suffix of the output variable).
    pub outputs: usize,
}

impl SymbolicCover {
    /// The cube space shared by `on` and `dc`.
    pub fn space(&self) -> &CubeSpace {
        self.on.space()
    }

    /// The set of states admitted by the present-state field of `cube`
    /// (the *input constraint* the cube induces).
    pub fn present_states(&self, cube: &Cube) -> Vec<StateId> {
        let space = self.space();
        (0..self.states as u32)
            .filter(|&p| cube.has_part(space, self.pstate_var, p))
            .map(|p| StateId(p as usize))
            .collect()
    }

    /// The next states asserted by the output field of `cube`.
    pub fn next_states(&self, cube: &Cube) -> Vec<StateId> {
        let space = self.space();
        let ov = space.output_var().expect("symbolic cover has output var");
        (0..self.states as u32)
            .filter(|&p| cube.has_part(space, ov, p))
            .map(|p| StateId(p as usize))
            .collect()
    }
}

/// Converts input trits into the binary fields of `cube`.
fn apply_input_pattern(space: &CubeSpace, cube: &mut Cube, pattern: &[Trit]) {
    for (v, t) in pattern.iter().enumerate() {
        match t {
            Trit::Zero => cube.set_part(space, v, 0),
            Trit::One => cube.set_part(space, v, 1),
            Trit::DontCare => cube.set_var_full(space, v),
        }
    }
}

/// Builds the multiple-valued symbolic cover of `fsm`.
///
/// The on-set has one cube per transition: the input pattern, the present
/// state as a 1-of-n literal, and an output field asserting the next state
/// part plus every `1` output. The don't-care set collects `-` outputs and
/// the transitions left unspecified by the table (computed per state by
/// complementing that state's input cubes).
pub fn symbolic_cover(fsm: &Fsm) -> SymbolicCover {
    let n = fsm.num_states();
    let inputs = fsm.num_inputs();
    let outputs = fsm.num_outputs();
    let mut sizes: Vec<u32> = vec![2; inputs];
    let mut kinds: Vec<VarKind> = vec![VarKind::Binary; inputs];
    sizes.push(n as u32);
    kinds.push(VarKind::Multi);
    sizes.push((n + outputs) as u32);
    kinds.push(VarKind::Output);
    let space = CubeSpace::new(&sizes, &kinds);
    let pstate_var = inputs;
    let ov = inputs + 1;

    let mut on = Cover::empty(space.clone());
    let mut dc = Cover::empty(space.clone());

    for t in fsm.transitions() {
        let mut base = Cube::zero(&space);
        apply_input_pattern(&space, &mut base, &t.input);
        base.set_part(&space, pstate_var, t.present.0 as u32);

        let mut on_cube = base.clone();
        on_cube.set_part(&space, ov, t.next.0 as u32);
        let mut dc_cube = base.clone();
        let mut has_dc = false;
        for (o, tr) in t.output.iter().enumerate() {
            match tr {
                Trit::One => on_cube.set_part(&space, ov, (n + o) as u32),
                Trit::DontCare => {
                    dc_cube.set_part(&space, ov, (n + o) as u32);
                    has_dc = true;
                }
                Trit::Zero => {}
            }
        }
        on.push(on_cube);
        if has_dc {
            dc.push(dc_cube);
        }
    }

    // Unspecified (input, state) combinations: everything is a don't care
    // there (including the next state).
    let input_space = CubeSpace::binary(inputs);
    for s in 0..n {
        let mut specified = Cover::empty(input_space.clone());
        for t in fsm.transitions().iter().filter(|t| t.present.0 == s) {
            let mut c = Cube::zero(&input_space);
            apply_input_pattern(&input_space, &mut c, &t.input);
            specified.push(c);
        }
        for hole in complement(&specified).iter() {
            let mut c = Cube::full(&space);
            for v in 0..inputs {
                for p in 0..2 {
                    if !hole.has_part(&input_space, v, p) {
                        c.clear_part(&space, v, p);
                    }
                }
            }
            c.clear_var(&space, pstate_var);
            c.set_part(&space, pstate_var, s as u32);
            // output var stays full: everything is DC here
            dc.push(c);
        }
    }

    SymbolicCover {
        on,
        dc,
        pstate_var,
        inputs,
        states: n,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso::minimize;

    const TOY: &str = "\
.i 2
.o 1
.s 3
00 a a 0
01 a b 0
1- a c 1
-- b a 0
-- c b 1
";

    #[test]
    fn cover_shape() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let sc = symbolic_cover(&m);
        assert_eq!(sc.on.len(), 5);
        assert_eq!(sc.space().num_vars(), 4); // 2 inputs + pstate + output
        assert_eq!(sc.space().parts(2), 3);
        assert_eq!(sc.space().parts(3), 4); // 3 next states + 1 output
        assert!(sc.dc.is_empty(), "completely specified machine");
    }

    #[test]
    fn present_and_next_state_extraction() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let sc = symbolic_cover(&m);
        let c = &sc.on.cubes()[2]; // 1- a c 1
        assert_eq!(sc.present_states(c), vec![StateId(0)]);
        assert_eq!(sc.next_states(c), vec![StateId(2)]);
    }

    #[test]
    fn unspecified_inputs_become_dont_cares() {
        let kiss = "\
.i 2
.o 1
.s 2
00 a b 1
-- b a 0
";
        let m = Fsm::parse_kiss(kiss).unwrap();
        let sc = symbolic_cover(&m);
        // state a has inputs 01, 10, 11 unspecified
        assert!(!sc.dc.is_empty());
        let mut dc_minterms = std::collections::BTreeSet::new();
        for c in sc.dc.iter() {
            for x in 0..2u32 {
                for y in 0..2u32 {
                    if c.has_part(sc.space(), 0, x) && c.has_part(sc.space(), 1, y) {
                        dc_minterms.insert((x, y));
                    }
                }
            }
        }
        assert_eq!(dc_minterms.len(), 3);
    }

    #[test]
    fn mv_minimization_groups_states() {
        // Two states that under input 1 go to the same next state with the
        // same output should merge into one cube with a 2-state literal.
        let kiss = "\
.i 1
.o 1
.s 3
1 a c 1
1 b c 1
0 a a 0
0 b b 0
1 c c 0
0 c a 0
";
        let m = Fsm::parse_kiss(kiss).unwrap();
        let id = |name: &str| {
            StateId(
                m.state_names()
                    .iter()
                    .position(|s| s == name)
                    .expect("state exists"),
            )
        };
        let sc = symbolic_cover(&m);
        let min = minimize(&sc.on, &sc.dc);
        let grouped = min.iter().any(|c| {
            let ps = sc.present_states(c);
            ps.contains(&id("a")) && ps.contains(&id("b")) && sc.next_states(c) == vec![id("c")]
        });
        assert!(
            grouped,
            "expected a merged cube for states {{a, b}}:\n{min:?}"
        );
    }
}
