//! The repo's one deterministic PRNG: SplitMix64 (Steele et al.).
//!
//! Every seeded component — the synthetic FSM generators, the randomized
//! differential tests, the benchmark harnesses, `nova-serve`'s request-id
//! minting — draws from this single implementation, so a seed means the same
//! byte stream everywhere and no external crate version can ever shift a
//! committed baseline. Tiny, fast, and statistically good enough to drive
//! structural test-case generation; not cryptographic.

/// SplitMix64: a 64-bit golden-ratio counter pushed through a bijective
/// finalizer. One `u64` of state, period 2^64.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

/// The golden-ratio increment of the SplitMix64 counter.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output function: a bijective mix of one 64-bit word.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `n`-th value of the SplitMix64 stream seeded with `seed`, without
/// materializing a generator — random access into the stream. Used for
/// deterministic id minting (`nova-serve` request ids) and for deriving
/// per-index child seeds in the scale generator.
#[inline]
pub fn mix(seed: u64, n: u64) -> u64 {
    finalize(seed.wrapping_add(n.wrapping_add(1).wrapping_mul(GAMMA)))
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GAMMA);
        finalize(self.0)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `u64` in `0..bound` (`bound > 0`).
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_is_stable() {
        // First outputs of seed 1234567, per the published SplitMix64
        // reference — pins the implementation against accidental edits,
        // which would silently shift every committed baseline.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn mix_is_random_access_into_the_stream() {
        let mut rng = SplitMix64::new(0xfeed);
        for n in 0..16 {
            assert_eq!(mix(0xfeed, n), rng.next_u64(), "index {n}");
        }
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            assert!(rng.below_u64(3) < 3);
        }
    }
}
