//! State minimization for completely specified machines (the classic
//! implication-table / partition-refinement step that precedes state
//! assignment in the SIS flow — the NOVA paper assumes its inputs are
//! already state-minimal).
//!
//! Two states are *distinguishable* when some input sequence produces
//! different specified outputs. The fixpoint computation marks pairs whose
//! overlapping input regions either conflict on outputs directly or lead to
//! distinguishable next states. For completely specified deterministic
//! machines indistinguishability is an equivalence relation and the merge
//! is exact; for incompletely specified machines compatibility is not
//! transitive and exact minimization is NP-hard — there we merge only
//! provably equivalent states (a safe, conservative reduction).

use crate::machine::{Fsm, StateId, Transition, Trit};

/// Result of [`minimize_states`]: the reduced machine and the block (new
/// state id) of every original state.
#[derive(Debug, Clone)]
pub struct StateMinimization {
    /// The reduced machine.
    pub fsm: Fsm,
    /// `block[s]` = new id of original state `s`.
    pub block: Vec<usize>,
    /// Number of states removed.
    pub merged: usize,
}

fn inputs_overlap(a: &[Trit], b: &[Trit]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| !matches!((x, y), (Trit::Zero, Trit::One) | (Trit::One, Trit::Zero)))
}

fn outputs_conflict(a: &[Trit], b: &[Trit]) -> bool {
    a.iter()
        .zip(b)
        .any(|(x, y)| matches!((x, y), (Trit::Zero, Trit::One) | (Trit::One, Trit::Zero)))
}

/// Minimizes the number of states by merging indistinguishable states.
///
/// The reset state (if any) maps to the block of the original reset state.
/// Rows of merged states are deduplicated; the surviving representative is
/// the lowest-numbered state of each block.
pub fn minimize_states(fsm: &Fsm) -> StateMinimization {
    let n = fsm.num_states();
    let rows_of: Vec<Vec<&Transition>> = (0..n)
        .map(|s| {
            fsm.transitions()
                .iter()
                .filter(|t| t.present.0 == s)
                .collect()
        })
        .collect();

    // dist[s][t]: states are known distinguishable.
    let mut dist = vec![vec![false; n]; n];
    // Step 0: direct output conflicts on overlapping input regions.
    for s in 0..n {
        for t in s + 1..n {
            let conflict = rows_of[s].iter().any(|r1| {
                rows_of[t].iter().any(|r2| {
                    inputs_overlap(&r1.input, &r2.input) && outputs_conflict(&r1.output, &r2.output)
                })
            });
            if conflict {
                dist[s][t] = true;
                dist[t][s] = true;
            }
        }
    }
    // Fixpoint: propagate through next states.
    loop {
        let mut changed = false;
        for s in 0..n {
            for t in s + 1..n {
                if dist[s][t] {
                    continue;
                }
                let propagate = rows_of[s].iter().any(|r1| {
                    rows_of[t].iter().any(|r2| {
                        inputs_overlap(&r1.input, &r2.input) && dist[r1.next.0][r2.next.0]
                    })
                });
                if propagate {
                    dist[s][t] = true;
                    dist[t][s] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Greedy block construction with full verification (handles the
    // incompletely-specified case safely: a state joins a block only when
    // indistinguishable from *every* member).
    let mut block = vec![usize::MAX; n];
    let mut reps: Vec<Vec<usize>> = Vec::new();
    for s in 0..n {
        let found = reps
            .iter()
            .position(|members| members.iter().all(|&m| !dist[s][m]));
        match found {
            Some(b) => {
                block[s] = b;
                reps[b].push(s);
            }
            None => {
                block[s] = reps.len();
                reps.push(vec![s]);
            }
        }
    }
    let new_n = reps.len();
    if new_n == n {
        return StateMinimization {
            fsm: fsm.clone(),
            block,
            merged: 0,
        };
    }

    // Rebuild: representative = first member of each block.
    let state_names: Vec<String> = reps
        .iter()
        .map(|members| fsm.state_names()[members[0]].clone())
        .collect();
    let mut transitions: Vec<Transition> = Vec::new();
    for t in fsm.transitions() {
        // Keep only the representative's rows.
        if reps[block[t.present.0]][0] != t.present.0 {
            continue;
        }
        let nt = Transition {
            input: t.input.clone(),
            present: StateId(block[t.present.0]),
            next: StateId(block[t.next.0]),
            output: t.output.clone(),
        };
        if !transitions.contains(&nt) {
            transitions.push(nt);
        }
    }
    let reset = fsm.reset().map(|r| StateId(block[r.0]));
    let fsm_min = Fsm::new(
        fsm.name(),
        fsm.num_inputs(),
        fsm.num_outputs(),
        state_names,
        transitions,
        reset,
    )
    .expect("reduced machine is structurally valid");
    StateMinimization {
        fsm: fsm_min,
        block,
        merged: n - new_n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::step_symbolic;

    #[test]
    fn merges_duplicate_states() {
        // b and c are byte-for-byte identical behaviour.
        let kiss = "\
.i 1
.o 1
.s 3
0 a b 0
1 a c 0
0 b a 1
1 b b 0
0 c a 1
1 c c 0
";
        let m = Fsm::parse_kiss(kiss).unwrap();
        let r = minimize_states(&m);
        assert_eq!(r.merged, 1);
        assert_eq!(r.fsm.num_states(), 2);
        assert_eq!(r.block[1], r.block[2]);
    }

    #[test]
    fn keeps_distinguishable_states() {
        let m = fsm_from_shiftreg();
        let r = minimize_states(&m);
        assert_eq!(r.merged, 0, "shiftreg is already minimal");
    }

    fn fsm_from_shiftreg() -> Fsm {
        crate::benchmarks::by_name("shiftreg").unwrap().fsm
    }

    #[test]
    fn distinguishability_needs_propagation() {
        // a and b produce identical outputs now, but diverge one step later
        // (a -> x which outputs 1, b -> y which outputs 0).
        let kiss = "\
.i 1
.o 1
.s 4
0 a x 0
1 a x 0
0 b y 0
1 b y 0
0 x x 1
1 x x 1
0 y y 0
1 y y 0
";
        let m = Fsm::parse_kiss(kiss).unwrap();
        let r = minimize_states(&m);
        // x and y are distinguishable (outputs differ); hence a and b too.
        let id = |name: &str| m.state_names().iter().position(|s| s == name).unwrap();
        assert_ne!(r.block[id("a")], r.block[id("b")]);
    }

    #[test]
    fn reduced_machine_is_behaviourally_equivalent() {
        let kiss = "\
.i 1
.o 1
.s 4
0 a b 0
1 a c 1
0 b a 0
1 b d 1
0 c a 0
1 c d 1
0 d d 1
1 d a 0
";
        let m = Fsm::parse_kiss(kiss).unwrap();
        let r = minimize_states(&m);
        assert!(r.merged >= 1, "b and c are equivalent");
        // Walk both machines in lockstep.
        let mut s_old = StateId(0);
        let mut s_new = StateId(r.block[0]);
        let mut bits = 0x9e3779b97f4a7c15u64;
        for _ in 0..200 {
            bits = bits.rotate_left(7).wrapping_mul(0xbf58476d1ce4e5b9);
            let input = [bits & 1 == 1];
            let old = step_symbolic(&m, s_old, &input).expect("complete");
            let new = step_symbolic(&r.fsm, s_new, &input).expect("complete");
            assert_eq!(old.outputs, new.outputs);
            s_old = old.next;
            s_new = new.next;
            assert_eq!(r.block[s_old.0], s_new.0, "state tracking diverged");
        }
    }

    #[test]
    fn reset_state_follows_its_block() {
        let kiss = "\
.i 1
.o 1
.s 3
.r b
0 b a 0
1 b a 1
0 c a 0
1 c a 1
0 a b 1
1 a c 1
";
        let m = Fsm::parse_kiss(kiss).unwrap();
        let r = minimize_states(&m);
        assert_eq!(r.merged, 1);
        assert_eq!(r.fsm.reset(), Some(StateId(r.block[m.reset().unwrap().0])));
    }

    #[test]
    fn benchmark_suite_is_state_minimal_or_reducible_consistently() {
        for b in crate::benchmarks::suite() {
            if b.fsm.num_states() > 40 {
                continue; // keep the test fast
            }
            let r = minimize_states(&b.fsm);
            assert_eq!(r.block.len(), b.fsm.num_states());
            assert!(r.fsm.num_states() + r.merged == b.fsm.num_states());
        }
    }
}
