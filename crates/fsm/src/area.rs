//! The PLA area model used throughout the NOVA paper's tables.

/// PLA area of an encoded FSM implementation, per the footnote of
/// Tables II–V:
///
/// `area = (2*(#inputs + #bits) + #bits + #outputs) * #cubes`
///
/// Every input column appears twice (true and complemented rails), the
/// next-state columns once in the OR plane (`#bits`), and the primary
/// outputs once.
///
/// # Examples
///
/// ```
/// use fsm::area::pla_area;
///
/// assert_eq!(pla_area(2, 2, 2, 10), 120);
/// ```
pub fn pla_area(inputs: usize, state_bits: usize, outputs: usize, cubes: usize) -> u64 {
    (2 * (inputs + state_bits) + state_bits + outputs) as u64 * cubes as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_rows() {
        // Table III / ihybrid rows where Table I statistics are unambiguous:
        // bbtas: 2 inputs, 2 outputs, 3 bits, 8 cubes -> 15*8 = 120.
        assert_eq!(pla_area(2, 3, 2, 8), 120);
        // shiftreg: 1 input, 1 output, 3 bits, 4 cubes -> 12*4 = 48.
        assert_eq!(pla_area(1, 3, 1, 4), 48);
        // train11: 2 inputs, 1 output, 4 bits, 9 cubes -> 17*9 = 153.
        assert_eq!(pla_area(2, 4, 1, 9), 153);
        // keyb: 7 inputs, 2 outputs, 5 bits, 48 cubes -> 31*48 = 1488.
        assert_eq!(pla_area(7, 5, 2, 48), 1488);
        // donfile: 2 inputs, 1 output, 5 bits, 28 cubes -> 20*28 = 560.
        assert_eq!(pla_area(2, 5, 1, 28), 560);
    }

    #[test]
    fn zero_cubes_zero_area() {
        assert_eq!(pla_area(4, 3, 2, 0), 0);
    }
}
