//! Applying a state encoding: from a symbolic FSM to a binary multi-output
//! PLA cover ready for two-level minimization.

use crate::machine::{Fsm, StateId, Trit};
use espresso::{complement, Cover, Cube, CubeSpace};
use std::error::Error;
use std::fmt;

/// An assignment of binary codes to the states of an FSM.
///
/// Codes are stored little-endian in a `u64`: bit `b` of `codes[s]` drives
/// state variable `b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoding {
    bits: usize,
    codes: Vec<u64>,
}

/// Error building an [`Encoding`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodingError(String);

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid encoding: {}", self.0)
    }
}

impl Error for EncodingError {}

impl Encoding {
    /// Builds an encoding, checking that codes are distinct and fit in
    /// `bits`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError`] on duplicate or oversized codes.
    pub fn new(bits: usize, codes: Vec<u64>) -> Result<Self, EncodingError> {
        if bits == 0 || bits > 63 {
            return Err(EncodingError(format!("bad code length {bits}")));
        }
        if bits < 64 {
            if let Some(&c) = codes.iter().find(|&&c| c >> bits != 0) {
                return Err(EncodingError(format!(
                    "code {c:#b} does not fit in {bits} bits"
                )));
            }
        }
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != codes.len() {
            return Err(EncodingError("duplicate codes".into()));
        }
        Ok(Encoding { bits, codes })
    }

    /// The 1-hot encoding of `n` states (`n` bits, code `1 << s`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds 63.
    pub fn one_hot(n: usize) -> Self {
        assert!((1..=63).contains(&n), "one-hot supports 1..=63 states");
        Encoding {
            bits: n,
            codes: (0..n).map(|s| 1u64 << s).collect(),
        }
    }

    /// Code length in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The code of state `s`.
    pub fn code(&self, s: StateId) -> u64 {
        self.codes[s.0]
    }

    /// All codes, indexed by state.
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// Number of encoded states.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when no states are encoded.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// The encoded combinational component of an FSM: a binary multi-output PLA
/// with inputs `(primary inputs, state bits)` and outputs
/// `(next-state bits, primary outputs)`.
#[derive(Debug, Clone)]
pub struct EncodedPla {
    /// On-set.
    pub on: Cover,
    /// Don't-care set (dash outputs, unused codes, unspecified transitions).
    pub dc: Cover,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of state bits.
    pub state_bits: usize,
    /// Number of primary outputs.
    pub outputs: usize,
}

impl EncodedPla {
    /// PLA area of this cover at the given product-term count, using the
    /// paper's formula.
    pub fn area_for(&self, cubes: usize) -> u64 {
        crate::area::pla_area(self.inputs, self.state_bits, self.outputs, cubes)
    }
}

fn set_input_pattern(space: &CubeSpace, cube: &mut Cube, pattern: &[Trit]) {
    for (v, t) in pattern.iter().enumerate() {
        match t {
            Trit::Zero => cube.set_part(space, v, 0),
            Trit::One => cube.set_part(space, v, 1),
            Trit::DontCare => cube.set_var_full(space, v),
        }
    }
}

fn set_state_code(space: &CubeSpace, cube: &mut Cube, base: usize, bits: usize, code: u64) {
    for b in 0..bits {
        let part = (code >> b & 1) as u32;
        cube.set_part(space, base + b, part);
    }
}

/// Encodes `fsm` with `enc`, producing the binary PLA covers.
///
/// Unused state codes and unspecified (input, state) combinations become
/// global don't cares; `-` outputs become per-row output don't cares.
///
/// # Panics
///
/// Panics if the encoding does not cover every state of the machine.
pub fn encode(fsm: &Fsm, enc: &Encoding) -> EncodedPla {
    assert_eq!(
        enc.len(),
        fsm.num_states(),
        "encoding must assign a code to every state"
    );
    let inputs = fsm.num_inputs();
    let bits = enc.bits();
    let outputs = fsm.num_outputs();
    let n = fsm.num_states();
    let space = CubeSpace::binary_with_output(inputs + bits, bits + outputs);
    let ov = space.output_var().expect("has output var");

    let mut on = Cover::empty(space.clone());
    let mut dc = Cover::empty(space.clone());

    for t in fsm.transitions() {
        let mut base = Cube::zero(&space);
        set_input_pattern(&space, &mut base, &t.input);
        set_state_code(&space, &mut base, inputs, bits, enc.code(t.present));

        let mut on_cube = base.clone();
        let next_code = enc.code(t.next);
        for b in 0..bits {
            if next_code >> b & 1 == 1 {
                on_cube.set_part(&space, ov, b as u32);
            }
        }
        let mut dc_cube = base.clone();
        let mut has_dc = false;
        for (o, tr) in t.output.iter().enumerate() {
            match tr {
                Trit::One => on_cube.set_part(&space, ov, (bits + o) as u32),
                Trit::DontCare => {
                    dc_cube.set_part(&space, ov, (bits + o) as u32);
                    has_dc = true;
                }
                Trit::Zero => {}
            }
        }
        if !on_cube.var_is_empty(&space, ov) {
            on.push(on_cube);
        }
        if has_dc {
            dc.push(dc_cube);
        }
    }

    // Unused codes: everything is don't-care there. Computed as the
    // complement of the used-code minterms over the state-bit subspace
    // (compact even for 1-hot encodings of large machines).
    let code_space = CubeSpace::binary(bits);
    let mut used = Cover::empty(code_space.clone());
    for &code in enc.codes() {
        let mut c = Cube::zero(&code_space);
        for b in 0..bits {
            c.set_part(&code_space, b, (code >> b & 1) as u32);
        }
        used.push(c);
    }
    for hole in complement(&used).iter() {
        let mut c = Cube::full(&space);
        for b in 0..bits {
            let v = inputs + b;
            for p in 0..2 {
                if !hole.has_part(&code_space, b, p) {
                    c.clear_part(&space, v, p);
                }
            }
        }
        dc.push(c);
    }

    // Unspecified inputs per state.
    let input_space = CubeSpace::binary(inputs);
    for s in 0..n {
        let mut specified = Cover::empty(input_space.clone());
        for t in fsm.transitions().iter().filter(|t| t.present.0 == s) {
            let mut c = Cube::zero(&input_space);
            set_input_pattern(&input_space, &mut c, &t.input);
            specified.push(c);
        }
        for hole in complement(&specified).iter() {
            let mut c = Cube::full(&space);
            for v in 0..inputs {
                for p in 0..2 {
                    if !hole.has_part(&input_space, v, p) {
                        c.clear_part(&space, v, p);
                    }
                }
            }
            for b in 0..bits {
                let v = inputs + b;
                c.clear_var(&space, v);
                c.set_part(&space, v, (enc.code(StateId(s)) >> b & 1) as u32);
            }
            dc.push(c);
        }
    }

    EncodedPla {
        on,
        dc,
        inputs,
        state_bits: bits,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espresso::minimize;

    const TOY: &str = "\
.i 1
.o 1
.s 2
0 a a 0
1 a b 0
- b a 1
";

    #[test]
    fn encoding_validation() {
        assert!(Encoding::new(2, vec![0, 1, 2]).is_ok());
        assert!(Encoding::new(1, vec![0, 1, 2]).is_err()); // 2 doesn't fit
        assert!(Encoding::new(2, vec![1, 1]).is_err()); // duplicate
        assert!(Encoding::new(0, vec![]).is_err());
    }

    #[test]
    fn one_hot_codes() {
        let e = Encoding::one_hot(3);
        assert_eq!(e.bits(), 3);
        assert_eq!(e.codes(), &[1, 2, 4]);
    }

    #[test]
    fn encode_shape() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let e = Encoding::new(1, vec![0, 1]).unwrap();
        let pla = encode(&m, &e);
        assert_eq!(pla.inputs, 1);
        assert_eq!(pla.state_bits, 1);
        assert_eq!(pla.outputs, 1);
        // Row "0 a a 0" asserts nothing (next code 0, output 0): dropped.
        assert_eq!(pla.on.len(), 2);
    }

    #[test]
    fn unused_codes_are_dont_cares() {
        let kiss = "\
.i 1
.o 1
.s 3
- a b 1
- b c 0
- c a 0
";
        let m = Fsm::parse_kiss(kiss).unwrap();
        let e = Encoding::new(2, vec![0b00, 0b01, 0b10]).unwrap();
        let pla = encode(&m, &e);
        // code 0b11 unused -> one full-output DC cube
        assert!(pla
            .dc
            .iter()
            .any(|c| c.var_is_full(pla.dc.space(), pla.dc.space().output_var().unwrap())));
    }

    #[test]
    fn minimized_encoded_cover_is_consistent() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let e = Encoding::new(1, vec![0, 1]).unwrap();
        let pla = encode(&m, &e);
        let min = minimize(&pla.on, &pla.dc);
        assert!(min.len() <= pla.on.len());
        assert!(espresso::verify_minimized(&min, &pla.on, &pla.dc));
    }

    #[test]
    fn area_formula_hookup() {
        let m = Fsm::parse_kiss(TOY).unwrap();
        let e = Encoding::new(1, vec![0, 1]).unwrap();
        let pla = encode(&m, &e);
        // (2*(1+1) + 1 + 1) * 10 = 60
        assert_eq!(pla.area_for(10), 60);
    }
}
